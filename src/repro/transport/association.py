"""Per-user AP association for multi-AP topologies.

Generalises the transport layer's implicit "the AP" to an
``(n_aps, n_users)`` axis: an RSS matrix over every AP/user link, a
strongest-RSS association rule with hysteresis (ping-pong damping, the
standard cellular/WLAN handover primitive), and an optional seeded
measurement-noise stream so noisy-handover scenarios stay reproducible.

Association is computed from the *matched-filter* RSS bound
``budget.rss_dbm(||h||^2)`` — the RSS a conjugate beam would deliver —
rather than any concrete group beam: association answers "which AP can
serve this user best", independent of this beacon's grouping.  Fault
offsets (per-AP blockage) feed the same matrix, so a blocked LoS drains
the serving AP's column and failover emerges from the ordinary handover
rule instead of a special case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..errors import TransportError
from ..obs import OBS
from ..phy.channel import ChannelState, LinkBudget
from ..phy.mcs import McsEntry
from .link import LinkModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.controller import FaultController

__all__ = ["ApAssociationPolicy", "association_rss_matrix", "delivery_probability_matrix"]


def association_rss_matrix(
    state: ChannelState,
    users: Sequence[int],
    budget: LinkBudget,
    faults: Optional["FaultController"] = None,
) -> np.ndarray:
    """Matched-filter RSS bound per ``(ap, user)`` link, in dBm.

    One vectorized pass: stack every AP's channels for the selected users,
    take ``||h||^2`` row-wise, and apply the link-budget scalars.  Zero
    channels map to ``-inf`` (unreachable), matching
    :meth:`LinkBudget.rss_dbm`.  With a fault controller, each entry is
    shifted by that link's blockage/SNR-dip offset at the current frame
    time.
    """
    if not users:
        raise TransportError("association needs at least one user")
    n_aps = state.n_aps
    gains = np.empty((n_aps, len(users)))
    for ap in range(n_aps):
        ap_state = state.for_ap(ap)
        stacked = ap_state.stacked(users)
        gains[ap] = np.sum(np.abs(stacked) ** 2, axis=1)
    rss = np.full_like(gains, -np.inf)
    positive = gains > 0.0
    rss[positive] = (
        budget.tx_power_dbm
        + budget.rx_gain_db
        - budget.implementation_loss_db
        + 10.0 * np.log10(gains[positive])
    )
    if faults is not None:
        for ap in range(n_aps):
            for column, user in enumerate(users):
                offset = faults.rss_offset_db(user, ap=ap)
                if offset:
                    rss[ap, column] += offset
    return rss


def delivery_probability_matrix(
    link: LinkModel,
    user_ids: Sequence[int],
    beams: Sequence[np.ndarray],
    true_state: ChannelState,
    mcss: Sequence[Optional[McsEntry]],
    rss_offsets_db: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Delivery probabilities on an ``(n_aps, n_users)`` grid.

    Row ``a`` evaluates AP ``a``'s beam/MCS against AP ``a``'s channels via
    the existing :meth:`LinkModel.delivery_probability_array` (the ulp-exact
    scalar-PER path), so per-AP numbers agree bit-for-bit with what a
    single-AP transmitter pass computes.  APs with no MCS (unreachable
    group) get a zero row.
    """
    n_aps = len(beams)
    if len(mcss) != n_aps:
        raise TransportError(f"{n_aps} beams but {len(mcss)} MCS entries")
    probs = np.zeros((n_aps, len(user_ids)))
    for ap in range(n_aps):
        mcs = mcss[ap]
        if mcs is None:
            continue
        offsets = None if rss_offsets_db is None else rss_offsets_db[ap]
        probs[ap] = link.delivery_probability_array(
            user_ids, beams[ap], true_state.for_ap(ap), mcs,
            rss_offsets_db=offsets,
        )
    return probs


class ApAssociationPolicy:
    """Strongest-RSS association with hysteresis and seeded handover noise.

    Args:
        n_aps: Access points in the topology.
        budget: Link budget used for the RSS bound.
        hysteresis_db: A user leaves its serving AP only when a challenger
            beats it by more than this margin.
        noise_db: Std-dev of measurement noise added to each comparison
            (drawn from a dedicated seeded stream; 0 disables the draw
            entirely so noiseless runs consume no randomness).
        seed: Seed of the association-noise stream, independent of the
            streamer's packet-loss RNG.
    """

    def __init__(
        self,
        n_aps: int,
        budget: LinkBudget,
        hysteresis_db: float = 3.0,
        noise_db: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_aps < 1:
            raise TransportError(f"n_aps must be >= 1, got {n_aps}")
        self.n_aps = int(n_aps)
        self.budget = budget
        self.hysteresis_db = float(hysteresis_db)
        self.noise_db = float(noise_db)
        self._rng = np.random.default_rng(seed)
        self.serving: Dict[int, int] = {}
        self._secondary: Dict[int, Optional[int]] = {}

    def update(
        self,
        state: ChannelState,
        users: Sequence[int],
        faults: Optional["FaultController"] = None,
    ) -> Dict[int, int]:
        """Re-evaluate association for ``users`` against a fresh snapshot.

        Users are processed in the given order with one noise matrix drawn
        up front, so the handover sequence is a pure function of
        ``(seed, call sequence)``.  Users not seen before associate to
        their strongest AP outright; known users keep their serving AP
        unless a challenger clears the hysteresis margin.  Departed users
        are evicted so a later rejoin re-associates fresh.
        """
        users = list(users)
        rss = association_rss_matrix(state, users, self.budget, faults=faults)
        if self.noise_db > 0.0:
            rss = rss + self._rng.normal(0.0, self.noise_db, size=rss.shape)
        for column, user in enumerate(users):
            column_rss = rss[:, column]
            best = int(np.argmax(column_rss))
            current = self.serving.get(user)
            if current is None:
                self.serving[user] = best
            elif (
                best != current
                and column_rss[best] > column_rss[current] + self.hysteresis_db
            ):
                self.serving[user] = best
                if OBS.mode:
                    OBS.count("transport.association.handover")
                    OBS.count(f"transport.association.handover.user.{user}")
            if self.n_aps > 1:
                order = np.argsort(column_rss)[::-1]
                runner_up = int(order[1]) if order[0] == self.serving[user] else int(order[0])
                self._secondary[user] = (
                    runner_up if np.isfinite(column_rss[runner_up]) else None
                )
            else:
                self._secondary[user] = None
        present = set(users)
        for user in [u for u in self.serving if u not in present]:
            del self.serving[user]
            self._secondary.pop(user, None)
        return dict(self.serving)

    def secondary(self, user: int) -> Optional[int]:
        """The best non-serving AP for ``user`` (repair source), if any."""
        return self._secondary.get(user)

    def users_of(self, ap: int) -> List[int]:
        """Users currently served by AP ``ap``, sorted."""
        return sorted(u for u, a in self.serving.items() if a == ap)
