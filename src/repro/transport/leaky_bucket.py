"""Leaky-bucket rate control (Sec 2.7).

For each multicast group the sender holds a credit in bytes.  Credit refills
continuously at the desired sending rate and is capped at a small maximum
(default 10 packets' worth) to bound queueing delay while sustaining
throughput; each transmitted packet consumes its size in credit.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransportError


class LeakyBucket:
    """Credit-based pacer for one multicast group.

    Args:
        rate_bytes_per_s: Average credit filling rate (set to the expected
            throughput of the group's MCS, later to the receiver-fed-back
            bandwidth estimate).
        capacity_bytes: Maximum credit held at once (the paper uses ~10
            packets to limit delay).
        initial_credit_bytes: Credit at time zero (defaults to full).
    """

    def __init__(
        self,
        rate_bytes_per_s: float,
        capacity_bytes: float,
        initial_credit_bytes: float = -1.0,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise TransportError(f"rate must be positive, got {rate_bytes_per_s}")
        if capacity_bytes <= 0:
            raise TransportError(f"capacity must be positive, got {capacity_bytes}")
        self.rate_bytes_per_s = float(rate_bytes_per_s)
        self.capacity_bytes = float(capacity_bytes)
        self._credit = (
            self.capacity_bytes if initial_credit_bytes < 0 else float(initial_credit_bytes)
        )
        self._last_refill_s = 0.0

    @property
    def credit_bytes(self) -> float:
        """Credit as of the last refill."""
        return self._credit

    def set_rate(self, rate_bytes_per_s: float) -> None:
        """Adjust the filling rate (bandwidth-feedback adaptation)."""
        if rate_bytes_per_s <= 0:
            raise TransportError(f"rate must be positive, got {rate_bytes_per_s}")
        self.rate_bytes_per_s = float(rate_bytes_per_s)

    def _refill(self, now_s: float) -> None:
        if now_s < self._last_refill_s:
            raise TransportError(
                f"time went backwards: {now_s} < {self._last_refill_s}"
            )
        elapsed = now_s - self._last_refill_s
        self._credit = min(
            self.capacity_bytes, self._credit + elapsed * self.rate_bytes_per_s
        )
        self._last_refill_s = now_s

    def try_send(self, nbytes: float, now_s: float) -> bool:
        """Consume credit for a packet if available; returns success."""
        self._refill(now_s)
        if self._credit + 1e-12 >= nbytes:
            self._credit -= nbytes
            return True
        return False

    def time_until_send(self, nbytes: float, now_s: float) -> float:
        """Seconds from ``now_s`` until a packet of ``nbytes`` may be sent."""
        self._refill(now_s)
        deficit = nbytes - self._credit
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_bytes_per_s

    def try_send_burst(self, nbytes: np.ndarray, now_s: float) -> np.ndarray:
        """Consume credit for a FIFO burst arriving at once; admitted mask.

        The pacer serves the burst head-of-line: packet ``i`` is admitted
        iff the cumulative bytes through ``i`` fit the available credit, so
        the admitted packets are always a prefix (a blocked packet blocks
        everything queued behind it, as in a real pacer).  One refill and
        one cumulative sum — no per-packet Python loop.

        Args:
            nbytes: ``(n,)`` array of positive packet sizes, burst order.
            now_s: Arrival time of the burst.

        Returns:
            ``(n,)`` boolean mask of admitted packets.
        """
        sizes = np.asarray(nbytes, dtype=np.float64)
        if sizes.ndim != 1:
            raise TransportError(
                f"burst sizes must be one-dimensional, got shape {sizes.shape}"
            )
        if sizes.size == 0:
            return np.zeros(0, dtype=bool)
        if float(sizes.min()) <= 0:
            raise TransportError("burst packet sizes must be positive")
        self._refill(now_s)
        admitted = np.cumsum(sizes) <= self._credit + 1e-12
        self._credit -= float(sizes[admitted].sum())
        return admitted

    def time_until_send_burst(
        self, nbytes: np.ndarray, now_s: float
    ) -> np.ndarray:
        """Earliest send time offset for each packet of a FIFO burst.

        Vectorized twin of :meth:`time_until_send` under head-of-line
        order: packet ``i`` can leave once credit covers the cumulative
        bytes through ``i``.  Does not consume credit.

        Returns:
            ``(n,)`` float array of seconds from ``now_s``, 0 where the
            current credit already suffices.
        """
        sizes = np.asarray(nbytes, dtype=np.float64)
        if sizes.ndim != 1:
            raise TransportError(
                f"burst sizes must be one-dimensional, got shape {sizes.shape}"
            )
        self._refill(now_s)
        deficits = np.cumsum(sizes) - self._credit
        return np.maximum(deficits, 0.0) / self.rate_bytes_per_s
