"""Packet transport over emulated WiGig links (Sec 2.6-2.7, 3.2).

Simulates the UDP data path of the testbed at packet granularity inside the
frame deadline: leaky-bucket pacing per multicast group, SNR-margin packet
loss with pseudo-multicast asymmetry (the associated STA enjoys MAC
retransmissions; monitor-mode STAs do not), sublayer-level reception
feedback with fountain-coded makeup packets, receiver-side bandwidth
estimation, and — for the Fig 9 ablation — an unpaced kernel queue that
tail-drops on overflow.
"""

from .leaky_bucket import LeakyBucket
from .link import LinkModel, packet_error_rate
from .kernel_queue import KernelQueue
from .bandwidth import (
    BandwidthEstimator,
    BandwidthTracker,
    CohortBandwidthEstimator,
)
from .cohort import CohortUserReception, FrameCohort, UserTallies
from .association import (
    ApAssociationPolicy,
    association_rss_matrix,
    delivery_probability_matrix,
)
from .transmitter import FrameTransmitter, TransmissionResult, UserReception

__all__ = [
    "ApAssociationPolicy",
    "association_rss_matrix",
    "delivery_probability_matrix",
    "LeakyBucket",
    "LinkModel",
    "packet_error_rate",
    "KernelQueue",
    "BandwidthEstimator",
    "BandwidthTracker",
    "CohortBandwidthEstimator",
    "CohortUserReception",
    "FrameCohort",
    "UserTallies",
    "FrameTransmitter",
    "TransmissionResult",
    "UserReception",
]
