"""Struct-of-arrays receiver state for cohort-vectorized transmission.

The per-user transmit path keeps a :class:`FrameBlockDecoder` (87 fountain
decoders) and a dict of scalar tallies per receiver, and walks a Python loop
over members for every packet.  That is O(symbols x users) Python work per
frame and caps emulation runs at a handful of receivers.

This module holds the cohort replacement: one :class:`FrameCohort` per frame
keeps every receiver's reception state as numpy arrays indexed by a
user-index map (user id -> array row), so a packet's delivery outcome for
the whole multicast group is a single boolean row and a frame's bookkeeping
is a handful of vectorized updates.

Decodability without decoders
-----------------------------

The fountain code is systematic: symbol ids below ``K`` are source symbols,
higher ids are dense random GF(256) combinations.  A receiver's unit is
decodable iff the GF(256) rank of its received coefficient rows is ``K``.
For a received set with systematic ids ``S`` and repair rows ``R`` the
identity ``rank([I_S; R]) = |S| + rank(R[:, complement(S)])`` reduces the
check to a small elimination over the repair rows only
(:func:`repro.fountain.gf256.gf_rank`), and receivers with identical
reception patterns share one check (``np.unique`` over pattern columns).
In the common case — all systematic ids present — no elimination runs at
all.

Per-user :class:`FrameBlockDecoder` objects are only *materialized* lazily
(:class:`CohortUserReception`), by replaying the recorded delivery events
for that one receiver; the replay feeds the exact symbol sequence the
per-user path would have ingested, so the materialized decoder is
indistinguishable from one built online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fountain.block import CodingUnitId, FrameBlockDecoder, FrameBlockEncoder
from ..fountain.gf256 import gf_rank
from ..fountain.raptor import COEFFICIENT_CACHE, FountainSymbol
from ..types import NUM_LAYERS
from ..video.jigsaw import SUBLAYER_COUNTS

__all__ = [
    "CohortUserReception",
    "FrameCohort",
    "UserTallies",
    "UserTally",
]


@dataclass
class UserTally:
    """Cross-frame delivery tallies for one receiver (read-out snapshot)."""

    frames: int = 0
    packets_received: int = 0
    packets_lost: int = 0


class UserTallies:
    """Cross-frame per-receiver tallies as parallel arrays.

    The struct-of-arrays replacement for the transmitter's old
    dict-of-``_UserTxState``: one int64 row per tracked receiver, addressed
    through a user-index map, so a frame's end-of-transmission accounting is
    three vectorized adds instead of a loop over users.  Eviction swaps the
    last row into the vacated slot (order is never observable; readers sort).
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self._ids = np.zeros(0, dtype=np.int64)
        self._frames = np.zeros(0, dtype=np.int64)
        self._received = np.zeros(0, dtype=np.int64)
        self._lost = np.zeros(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._index)

    def _rows_for(self, users: Sequence[int]) -> np.ndarray:
        """Rows for ``users``, growing the arrays for unseen ids."""
        new = [u for u in users if u not in self._index]
        if new:
            start = self._ids.size
            grow = len(new)
            self._ids = np.concatenate([self._ids, np.asarray(new, dtype=np.int64)])
            self._frames = np.concatenate([self._frames, np.zeros(grow, np.int64)])
            self._received = np.concatenate([self._received, np.zeros(grow, np.int64)])
            self._lost = np.concatenate([self._lost, np.zeros(grow, np.int64)])
            for offset, user in enumerate(new):
                self._index[user] = start + offset
        return np.fromiter(
            (self._index[u] for u in users), dtype=np.intp, count=len(users)
        )

    def update_frame(
        self,
        users: Sequence[int],
        received: np.ndarray,
        lost: np.ndarray,
    ) -> None:
        """Fold one frame's per-user delivery counts in (one frame each)."""
        rows = self._rows_for(users)
        self._frames[rows] += 1
        self._received[rows] += np.asarray(received, dtype=np.int64)
        self._lost[rows] += np.asarray(lost, dtype=np.int64)

    def add(self, user: int, received: int = 0, lost: int = 0) -> None:
        """Scalar per-user update (the seed path's accounting loop)."""
        row = int(self._rows_for([user])[0])
        self._frames[row] += 1
        self._received[row] += int(received)
        self._lost[row] += int(lost)

    def get(self, user: int) -> Optional[UserTally]:
        """Tally snapshot for ``user`` (None if never served)."""
        row = self._index.get(user)
        if row is None:
            return None
        return UserTally(
            frames=int(self._frames[row]),
            packets_received=int(self._received[row]),
            packets_lost=int(self._lost[row]),
        )

    def tracked(self) -> List[int]:
        """Sorted ids of every receiver with live state."""
        return sorted(self._index)

    def evict(self, user: int) -> bool:
        """Drop ``user``'s row (swap-remove); True if it existed."""
        row = self._index.pop(user, None)
        if row is None:
            return False
        last = self._ids.size - 1
        if row != last:
            moved = int(self._ids[last])
            self._ids[row] = self._ids[last]
            self._frames[row] = self._frames[last]
            self._received[row] = self._received[last]
            self._lost[row] = self._lost[last]
            self._index[moved] = row
        self._ids = self._ids[:last]
        self._frames = self._frames[:last]
        self._received = self._received[:last]
        self._lost = self._lost[:last]
        return True


class _UnitState:
    """Reception state of one coding unit across the whole cohort.

    ``sys_mask[i, u]`` — receiver ``u`` holds systematic symbol ``i``;
    ``distinct[u]`` — distinct symbol ids held (the feedback quantity);
    repair symbols get one boolean row each over the cohort, plus their
    symbol id for coefficient lookup at decodability time.
    """

    __slots__ = (
        "block_id",
        "k",
        "sys_mask",
        "distinct",
        "repair_ids",
        "repair_rows",
        "repair_index",
        "events",
        "_decoded",
    )

    def __init__(self, block_id: int, k: int, num_users: int) -> None:
        self.block_id = block_id
        self.k = k
        self.sys_mask = np.zeros((k, num_users), dtype=bool)
        self.distinct = np.zeros(num_users, dtype=np.int64)
        self.repair_ids: List[int] = []
        self.repair_rows: List[np.ndarray] = []
        self.repair_index: Dict[int, int] = {}
        #: Chronological (symbols, member_rows, delivered) records for lazy
        #: per-user decoder replay.
        self.events: List[
            Tuple[List[FountainSymbol], np.ndarray, np.ndarray]
        ] = []
        self._decoded: Optional[np.ndarray] = None

    def record(
        self,
        symbols: List[FountainSymbol],
        member_rows: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        """Fold one delivery event in: ``delivered`` is (symbols, members)."""
        self.events.append((symbols, member_rows, delivered))
        self._decoded = None
        ids = np.fromiter(
            (s.symbol_id for s in symbols), dtype=np.int64, count=len(symbols)
        )
        sys_sel = ids < self.k
        if sys_sel.any():
            sys_ids = ids[sys_sel]
            rows = delivered[sys_sel]
            if np.unique(sys_ids).size == sys_ids.size:
                grid = np.ix_(sys_ids, member_rows)
                fresh = rows & ~self.sys_mask[grid]
                self.sys_mask[grid] |= rows
                self.distinct[member_rows] += fresh.sum(axis=0)
            else:
                # Plain mode wraps ids modulo K, so one event can carry the
                # same id twice; fancy scatter would collapse them.
                for sid, row in zip(sys_ids, rows):
                    fresh = row & ~self.sys_mask[sid, member_rows]
                    self.sys_mask[sid, member_rows] |= row
                    self.distinct[member_rows] += fresh
        if not sys_sel.all():
            num_users = self.sys_mask.shape[1]
            for sid, row in zip(ids[~sys_sel], delivered[~sys_sel]):
                pos = self.repair_index.get(int(sid))
                if pos is None:
                    full = np.zeros(num_users, dtype=bool)
                    full[member_rows] = row
                    self.repair_index[int(sid)] = len(self.repair_ids)
                    self.repair_ids.append(int(sid))
                    self.repair_rows.append(full)
                    self.distinct[member_rows] += row
                else:
                    full = self.repair_rows[pos]
                    fresh = row & ~full[member_rows]
                    full[member_rows] |= row
                    self.distinct[member_rows] += fresh

    def decoded_users(self) -> np.ndarray:
        """Boolean (num_users,) decodability of this unit, cached."""
        if self._decoded is not None:
            return self._decoded
        decoded = self.sys_mask.all(axis=0)
        if self.repair_rows:
            candidates = np.nonzero(~decoded & (self.distinct >= self.k))[0]
            if candidates.size:
                repair_mat = np.stack(self.repair_rows)
                patterns = np.concatenate(
                    [self.sys_mask[:, candidates], repair_mat[:, candidates]]
                ).T
                unique, inverse = np.unique(
                    patterns, axis=0, return_inverse=True
                )
                coeffs = np.stack(
                    [
                        COEFFICIENT_CACHE.row(self.block_id, self.k, sid)
                        for sid in self.repair_ids
                    ]
                )
                verdicts = np.zeros(unique.shape[0], dtype=bool)
                for p, pattern in enumerate(unique):
                    have_sys = pattern[: self.k]
                    have_rep = pattern[self.k:]
                    need = self.k - int(have_sys.sum())
                    sub = coeffs[have_rep][:, ~have_sys]
                    verdicts[p] = gf_rank(sub) >= need
                decoded[candidates] = verdicts[inverse]
        self._decoded = decoded
        return decoded


class FrameCohort:
    """All receivers' reception state for one frame, as arrays.

    Args:
        users: Receiver ids, defining the row order of every array.
        encoder: The frame's block encoder (structure/symbol geometry).
    """

    def __init__(self, users: Sequence[int], encoder: FrameBlockEncoder) -> None:
        self.users: List[int] = list(users)
        self.index: Dict[int, int] = {u: i for i, u in enumerate(self.users)}
        self.frame_index = encoder.frame_index
        self.structure = encoder.structure
        self.symbol_size = encoder.symbol_size
        self.k = encoder.symbols_per_unit()
        n = len(self.users)
        self.packets_received = np.zeros(n, dtype=np.int64)
        self.packets_lost = np.zeros(n, dtype=np.int64)
        self.delivered_payload_bytes = np.zeros(n, dtype=np.float64)
        self._units: Dict[CodingUnitId, _UnitState] = {}

    def __len__(self) -> int:
        return len(self.users)

    def member_rows(self, user_ids: Sequence[int]) -> np.ndarray:
        """Array rows of the cohort members among ``user_ids``, in order."""
        rows = [self.index[u] for u in user_ids if u in self.index]
        return np.asarray(rows, dtype=np.intp)

    def record(
        self,
        unit: CodingUnitId,
        symbols: List[FountainSymbol],
        member_rows: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        """Apply one group's delivery outcome for ``symbols`` of ``unit``.

        ``delivered`` is boolean ``(len(symbols), len(member_rows))``; every
        member either receives or loses each symbol, exactly as the
        per-user ``_deliver`` loop tallies it.
        """
        if not symbols or member_rows.size == 0:
            return
        received = delivered.sum(axis=0)
        self.packets_received[member_rows] += received
        self.packets_lost[member_rows] += len(symbols) - received
        self.delivered_payload_bytes[member_rows] += (
            received * float(self.symbol_size)
        )
        state = self._units.get(unit)
        if state is None:
            state = _UnitState(unit.block_id, self.k, len(self.users))
            self._units[unit] = state
        state.record(symbols, member_rows, delivered)

    # --------------------------------------------------------- feedback reads

    def min_distinct(self, unit: CodingUnitId, member_rows: np.ndarray) -> int:
        """Smallest distinct-symbol count among members (0 if unit unseen)."""
        state = self._units.get(unit)
        if state is None or member_rows.size == 0:
            return 0
        return int(state.distinct[member_rows].min())

    def plain_missing(
        self, unit: CodingUnitId, member_rows: np.ndarray
    ) -> List[int]:
        """Sorted segment ids some non-decoded member still lacks."""
        state = self._units.get(unit)
        if state is None:
            return list(range(self.k)) if member_rows.size else []
        decoded = state.decoded_users()
        needy = member_rows[~decoded[member_rows]]
        if needy.size == 0:
            return []
        missing = ~state.sys_mask[:, needy].all(axis=1)
        return [int(i) for i in np.nonzero(missing)[0]]

    # ---------------------------------------------------------- outcome reads

    def decoded_matrices(self) -> List[np.ndarray]:
        """Per-layer boolean (num_users, sublayers) decodability matrices."""
        n = len(self.users)
        matrices = [
            np.zeros((n, count), dtype=bool) for count in SUBLAYER_COUNTS
        ]
        for unit, state in self._units.items():
            matrices[unit.layer][:, unit.sublayer] = state.decoded_users()
        return matrices

    def bytes_per_layer_matrix(self) -> np.ndarray:
        """(num_users, NUM_LAYERS) useful payload bytes, FrameStats-exact."""
        totals = np.zeros((len(self.users), NUM_LAYERS))
        for unit, state in self._units.items():
            useful = np.minimum(state.distinct, state.k)
            totals[:, unit.layer] += useful * float(self.symbol_size)
        return totals

    # ------------------------------------------------------- lazy decoders

    def materialize_decoder(self, row: int) -> FrameBlockDecoder:
        """Build the :class:`FrameBlockDecoder` receiver ``row`` would hold.

        Replays the recorded delivery events for that receiver in order.
        Per-unit decoders are independent, so replaying unit by unit yields
        the same state as the original chronological interleaving.
        """
        decoder = FrameBlockDecoder(
            self.frame_index, self.structure, self.symbol_size
        )
        for state in self._units.values():
            for symbols, member_rows, delivered in state.events:
                cols = np.nonzero(member_rows == row)[0]
                if cols.size == 0:
                    continue
                got = delivered[:, int(cols[0])]
                for s_idx in np.nonzero(got)[0]:
                    decoder.ingest(symbols[int(s_idx)])
        return decoder


class CohortUserReception:
    """One receiver's view into a :class:`FrameCohort`.

    Duck-types :class:`repro.transport.transmitter.UserReception`: the
    scalar tallies read straight from the cohort arrays and the
    ``decoder`` materializes on first access (cohort-aware consumers never
    touch it, so the fast path never builds per-user decoders).
    """

    __slots__ = ("_cohort", "_row", "_decoder")

    def __init__(self, cohort: FrameCohort, row: int) -> None:
        self._cohort = cohort
        self._row = row
        self._decoder: Optional[FrameBlockDecoder] = None

    @property
    def packets_received(self) -> int:
        return int(self._cohort.packets_received[self._row])

    @property
    def packets_lost(self) -> int:
        return int(self._cohort.packets_lost[self._row])

    @property
    def delivered_payload_bytes(self) -> float:
        return float(self._cohort.delivered_payload_bytes[self._row])

    @property
    def decoder(self) -> FrameBlockDecoder:
        if self._decoder is None:
            self._decoder = self._cohort.materialize_decoder(self._row)
        return self._decoder
