"""Emulated WiGig data link: SNR-margin packet loss and pseudo multicast.

Packet error rate is a steep function of the margin between the receiver's
true RSS (under the active beam) and the sensitivity of the MCS the packet is
modulated at — the defining fragility of mmWave links: a few dB of channel
degradation below sensitivity kills the link.

Pseudo multicast (Sec 3.2): one STA is associated normally and keeps 802.11
MAC retransmissions (its effective loss is ``PER^(1+retries)``); the other
STAs run in monitor mode, capture frames not addressed to them, and see the
raw PER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import TransportError
from ..obs import OBS
from ..phy.channel import ChannelModel, ChannelState
from ..phy.mcs import McsEntry

#: PER at exactly the MCS sensitivity.
_PER_AT_SENSITIVITY = 1e-2

#: PER floor for strong links (residual interference/collisions).
_PER_FLOOR = 1e-4

#: PER ceiling (even a dead link occasionally delivers a packet).
_PER_CEILING = 0.97


def packet_error_rate(margin_db: float) -> float:
    """Packet error rate as a function of SNR margin above MCS sensitivity.

    One decade per dB above sensitivity (fast waterfall), half a decade per
    dB below it (progressive collapse as the channel degrades under the
    selected MCS).
    """
    if margin_db >= 0:
        per = _PER_AT_SENSITIVITY * 10.0 ** (-margin_db)
    else:
        per = _PER_AT_SENSITIVITY * 10.0 ** (-margin_db / 2.0)
    return float(np.clip(per, _PER_FLOOR, _PER_CEILING))


@dataclass
class LinkModel:
    """Per-packet delivery decisions through the true channel.

    Args:
        channel_model: Supplies the link budget for RSS computation.
        associated_user: The STA associated with the AP (MAC retransmissions
            apply); all others are monitor-mode receivers.
        mac_retries: 802.11 retransmission attempts for the associated STA.
    """

    channel_model: ChannelModel
    associated_user: Optional[int] = None
    mac_retries: int = 2

    def delivery_probability(
        self,
        user: int,
        beam: np.ndarray,
        true_state: ChannelState,
        mcs: McsEntry,
        rss_offset_db: float = 0.0,
    ) -> float:
        """Probability one packet reaches ``user`` under ``beam`` at ``mcs``.

        ``rss_offset_db`` shifts the received strength before the PER
        mapping — the seam fault injection uses for blockage bursts and
        SNR dips (:class:`repro.faults.FaultedLinkModel`).
        """
        if user not in true_state.channels:
            raise TransportError(f"no channel for user {user}")
        rss = self.channel_model.rss_dbm(beam, true_state.channels[user])
        if rss_offset_db:
            rss += rss_offset_db
        per = packet_error_rate(rss - mcs.sensitivity_dbm)
        if user == self.associated_user:
            per = per ** (1 + max(0, self.mac_retries))
        prob = float(1.0 - per)
        if OBS.mode:
            OBS.count("link.prob_evals")
            OBS.observe("link.delivery_prob", prob)
            OBS.set_gauge(f"link.user.{user}.rss_dbm", rss)
            OBS.set_gauge(
                f"link.user.{user}.margin_db", rss - mcs.sensitivity_dbm
            )
        return prob

    def delivery_probabilities(
        self,
        users: Dict[int, None] | list,
        beam: np.ndarray,
        true_state: ChannelState,
        mcs: McsEntry,
    ) -> Dict[int, float]:
        """Delivery probability for several users under one beam/MCS."""
        return {
            u: self.delivery_probability(u, beam, true_state, mcs) for u in users
        }
