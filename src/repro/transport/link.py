"""Emulated WiGig data link: SNR-margin packet loss and pseudo multicast.

Packet error rate is a steep function of the margin between the receiver's
true RSS (under the active beam) and the sensitivity of the MCS the packet is
modulated at — the defining fragility of mmWave links: a few dB of channel
degradation below sensitivity kills the link.

Pseudo multicast (Sec 3.2): one STA is associated normally and keeps 802.11
MAC retransmissions (its effective loss is ``PER^(1+retries)``); the other
STAs run in monitor mode, capture frames not addressed to them, and see the
raw PER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import TransportError
from ..obs import OBS
from ..phy.channel import ChannelModel, ChannelState
from ..phy.mcs import McsEntry

#: PER at exactly the MCS sensitivity.
_PER_AT_SENSITIVITY = 1e-2

#: PER floor for strong links (residual interference/collisions).
_PER_FLOOR = 1e-4

#: PER ceiling (even a dead link occasionally delivers a packet).
_PER_CEILING = 0.97


def packet_error_rate(margin_db: float) -> float:
    """Packet error rate as a function of SNR margin above MCS sensitivity.

    One decade per dB above sensitivity (fast waterfall), half a decade per
    dB below it (progressive collapse as the channel degrades under the
    selected MCS).
    """
    if margin_db >= 0:
        per = _PER_AT_SENSITIVITY * 10.0 ** (-margin_db)
    else:
        per = _PER_AT_SENSITIVITY * 10.0 ** (-margin_db / 2.0)
    return float(np.clip(per, _PER_FLOOR, _PER_CEILING))


@dataclass
class LinkModel:
    """Per-packet delivery decisions through the true channel.

    Args:
        channel_model: Supplies the link budget for RSS computation.
        associated_user: The STA associated with the AP (MAC retransmissions
            apply); all others are monitor-mode receivers.
        mac_retries: 802.11 retransmission attempts for the associated STA.
    """

    channel_model: ChannelModel
    associated_user: Optional[int] = None
    mac_retries: int = 2

    def delivery_probability(
        self,
        user: int,
        beam: np.ndarray,
        true_state: ChannelState,
        mcs: McsEntry,
        rss_offset_db: float = 0.0,
    ) -> float:
        """Probability one packet reaches ``user`` under ``beam`` at ``mcs``.

        ``rss_offset_db`` shifts the received strength before the PER
        mapping — the seam fault injection uses for blockage bursts and
        SNR dips (:class:`repro.faults.FaultedLinkModel`).
        """
        if user not in true_state.channels:
            raise TransportError(f"no channel for user {user}")
        rss = self.channel_model.rss_dbm(beam, true_state.channels[user])
        if rss_offset_db:
            rss += rss_offset_db
        per = packet_error_rate(rss - mcs.sensitivity_dbm)
        if user == self.associated_user:
            per = per ** (1 + max(0, self.mac_retries))
        prob = float(1.0 - per)
        if OBS.mode:
            OBS.count("link.prob_evals")
            OBS.observe("link.delivery_prob", prob)
            OBS.set_gauge(f"link.user.{user}.rss_dbm", rss)
            OBS.set_gauge(
                f"link.user.{user}.margin_db", rss - mcs.sensitivity_dbm
            )
        return prob

    def delivery_probability_array(
        self,
        user_ids: Sequence[int],
        beam: np.ndarray,
        true_state: ChannelState,
        mcs: McsEntry,
        rss_offsets_db: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Delivery probabilities for a whole cohort under one beam/MCS.

        Array-in/array-out companion to :meth:`delivery_probability`: the
        margin/offset/erasure arithmetic and the final ``1 - PER`` step run
        as whole-vector operations.  Two steps deliberately stay scalar per
        element, because bit-identity with the per-user seed path is a hard
        contract (the golden suites pin it):

        * the beam-gain dot product — BLAS batches a stacked ``(n, Nt) @
          beam`` through a different kernel than the per-user ``vdot``,
          which can differ in the last ulp;
        * the ``10 ** -margin`` PER mapping — numpy's SIMD ``power`` ufunc
          differs from the scalar libm ``pow`` by 1-2 ulp over the
          unclipped PER band.

        Both run once per (group, beam) per frame and are memoized by the
        transmitter, so they are off the per-symbol hot path.

        Args:
            user_ids: Cohort members, in draw-column order.
            beam: Active transmit beam.
            true_state: Ground-truth channels.
            mcs: Modulation the packets are sent at.
            rss_offsets_db: Optional per-user RSS offsets (fault
                attenuation), aligned with ``user_ids``.

        Returns:
            ``float64`` array of per-user delivery probabilities, aligned
            with ``user_ids``.
        """
        users = list(user_ids)
        out = np.empty(len(users), dtype=np.float64)
        if not users:
            return out
        if OBS.mode:
            # The scalar path emits the per-user link gauges; route through
            # it so observability runs see identical counters.
            offsets = (
                np.zeros(len(users))
                if rss_offsets_db is None
                else np.asarray(rss_offsets_db, dtype=np.float64)
            )
            for i, user in enumerate(users):
                out[i] = self.delivery_probability(
                    user, beam, true_state, mcs, float(offsets[i])
                )
            return out
        missing = [u for u in users if u not in true_state.channels]
        if missing:
            raise TransportError(f"no channel for user {missing[0]}")
        rss = np.fromiter(
            (
                self.channel_model.rss_dbm(beam, true_state.channels[u])
                for u in users
            ),
            dtype=np.float64,
            count=len(users),
        )
        if rss_offsets_db is not None:
            offsets = np.asarray(rss_offsets_db, dtype=np.float64)
            # Only add where non-zero, mirroring the scalar path's
            # ``if rss_offset_db:`` guard (adding 0.0 flips -0.0 to +0.0).
            nonzero = offsets != 0.0
            if nonzero.any():
                rss = rss.copy()
                rss[nonzero] += offsets[nonzero]
        margins = rss - mcs.sensitivity_dbm
        per = np.fromiter(
            (packet_error_rate(m) for m in margins),
            dtype=np.float64,
            count=len(users),
        )
        if self.associated_user is not None and self.associated_user in users:
            i = users.index(self.associated_user)
            per[i] = per[i] ** (1 + max(0, self.mac_retries))
        return 1.0 - per

    def delivery_probabilities(
        self,
        users: Dict[int, None] | list,
        beam: np.ndarray,
        true_state: ChannelState,
        mcs: McsEntry,
    ) -> Dict[int, float]:
        """Delivery probability for several users under one beam/MCS."""
        ordered = list(users)
        probs = self.delivery_probability_array(ordered, beam, true_state, mcs)
        return dict(zip(ordered, probs.tolist()))
