"""Receiver-side bandwidth estimation (Sec 2.7).

Each receiver measures the link bandwidth from the arrival spacing of 100
back-to-back data packets and feeds it back; the sender uses the estimate
reported during the previous frame to set the leaky-bucket rate for the next
one.  The paper samples the probe packets from the highest layer so probe
losses (probes bypass rate control and are congestion-prone) never cost base
layer content; in the emulator the probes are the last 100 packets of the
frame, which the layer-ordered scheduler naturally fills with top-layer
symbols.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TransportError

#: Number of packets in one measurement window (the paper's choice).
MEASUREMENT_WINDOW_PACKETS = 100


class BandwidthEstimator:
    """Arrival-spacing bandwidth estimator with exponential smoothing.

    Args:
        smoothing: EWMA factor applied across frames (1.0 = use only the
            newest measurement).
        noise_std_fraction: Relative measurement noise; real arrival
            timestamps jitter with interrupt coalescing etc.
    """

    def __init__(self, smoothing: float = 0.6, noise_std_fraction: float = 0.05):
        if not 0.0 < smoothing <= 1.0:
            raise TransportError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self.noise_std_fraction = float(noise_std_fraction)
        self._estimate_bytes_per_s: Optional[float] = None

    @property
    def estimate_bytes_per_s(self) -> Optional[float]:
        """Current smoothed estimate, or None before the first measurement."""
        return self._estimate_bytes_per_s

    def observe_window(
        self,
        delivered_bytes: float,
        window_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Fold one measurement window into the estimate.

        Args:
            delivered_bytes: Payload bytes that actually arrived in the
                window (losses reduce the measured bandwidth, exactly as they
                stretch real arrival gaps).
            window_s: Duration of the window.
            rng: Measurement-noise source.

        Returns:
            The updated estimate in bytes/s.
        """
        if window_s <= 0:
            raise TransportError(f"window must be positive, got {window_s}")
        measured = max(0.0, delivered_bytes / window_s)
        measured *= float(1.0 + rng.normal(0.0, self.noise_std_fraction))
        measured = max(measured, 1e-9)
        if self._estimate_bytes_per_s is None:
            self._estimate_bytes_per_s = measured
        else:
            self._estimate_bytes_per_s = (
                self.smoothing * measured
                + (1.0 - self.smoothing) * self._estimate_bytes_per_s
            )
        return self._estimate_bytes_per_s

    def observe_fraction(
        self, delivered_fraction: float, rng: np.random.Generator
    ) -> float:
        """Fold a delivery-fraction measurement into the estimate.

        The emulated receiver reports the fraction of packets that arrived;
        the sender multiplies it by each group's nominal rate to get the
        sustainable goodput — equivalent to the paper's arrival-spacing
        estimate (losses stretch arrival gaps by exactly this factor) but
        independent of how much of the frame budget the group occupied.
        """
        if not 0.0 <= delivered_fraction <= 1.0:
            raise TransportError(
                f"fraction must be in [0, 1], got {delivered_fraction}"
            )
        return self.observe_window(delivered_fraction, 1.0, rng)

    def decay(self, factor: float) -> Optional[float]:
        """Exponentially shrink a stale estimate (graceful degradation).

        When a receiver's feedback report is lost, the sender keeps pacing
        at the last-known-good rate but trusts it a little less every
        frame: each call multiplies the estimate by ``factor``, so a long
        feedback outage converges toward a conservative floor instead of
        pinning a possibly-dead link at its last healthy rate.

        Returns:
            The decayed estimate, or ``None`` if no measurement exists yet
            (nothing to decay).
        """
        if not 0.0 < factor <= 1.0:
            raise TransportError(f"decay factor must be in (0, 1], got {factor}")
        if self._estimate_bytes_per_s is not None:
            self._estimate_bytes_per_s = max(
                self._estimate_bytes_per_s * factor, 1e-9
            )
        return self._estimate_bytes_per_s

    def reset(self) -> None:
        """Forget all measurements (e.g. after re-association)."""
        self._estimate_bytes_per_s = None
