"""Receiver-side bandwidth estimation (Sec 2.7).

Each receiver measures the link bandwidth from the arrival spacing of 100
back-to-back data packets and feeds it back; the sender uses the estimate
reported during the previous frame to set the leaky-bucket rate for the next
one.  The paper samples the probe packets from the highest layer so probe
losses (probes bypass rate control and are congestion-prone) never cost base
layer content; in the emulator the probes are the last 100 packets of the
frame, which the layer-ordered scheduler naturally fills with top-layer
symbols.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..errors import TransportError

#: Number of packets in one measurement window (the paper's choice).
MEASUREMENT_WINDOW_PACKETS = 100


class BandwidthTracker(Protocol):
    """Per-receiver bandwidth-feedback interface.

    Implemented by the standalone :class:`BandwidthEstimator` (seed path)
    and by :class:`_CohortBandwidthView`, the scalar adapter over one
    :class:`CohortBandwidthEstimator` row (optimized path); session state
    holds either interchangeably.
    """

    @property
    def estimate_bytes_per_s(self) -> Optional[float]: ...

    def observe_window(
        self, delivered_bytes: float, window_s: float, rng: np.random.Generator
    ) -> float: ...

    def observe_fraction(
        self, delivered_fraction: float, rng: np.random.Generator
    ) -> float: ...

    def decay(self, factor: float) -> Optional[float]: ...

    def reset(self) -> None: ...


class BandwidthEstimator:
    """Arrival-spacing bandwidth estimator with exponential smoothing.

    Args:
        smoothing: EWMA factor applied across frames (1.0 = use only the
            newest measurement).
        noise_std_fraction: Relative measurement noise; real arrival
            timestamps jitter with interrupt coalescing etc.
    """

    def __init__(self, smoothing: float = 0.6, noise_std_fraction: float = 0.05):
        if not 0.0 < smoothing <= 1.0:
            raise TransportError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self.noise_std_fraction = float(noise_std_fraction)
        self._estimate_bytes_per_s: Optional[float] = None

    @property
    def estimate_bytes_per_s(self) -> Optional[float]:
        """Current smoothed estimate, or None before the first measurement."""
        return self._estimate_bytes_per_s

    def observe_window(
        self,
        delivered_bytes: float,
        window_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Fold one measurement window into the estimate.

        Args:
            delivered_bytes: Payload bytes that actually arrived in the
                window (losses reduce the measured bandwidth, exactly as they
                stretch real arrival gaps).
            window_s: Duration of the window.
            rng: Measurement-noise source.

        Returns:
            The updated estimate in bytes/s.
        """
        if window_s <= 0:
            raise TransportError(f"window must be positive, got {window_s}")
        measured = max(0.0, delivered_bytes / window_s)
        measured *= float(1.0 + rng.normal(0.0, self.noise_std_fraction))
        measured = max(measured, 1e-9)
        if self._estimate_bytes_per_s is None:
            self._estimate_bytes_per_s = measured
        else:
            self._estimate_bytes_per_s = (
                self.smoothing * measured
                + (1.0 - self.smoothing) * self._estimate_bytes_per_s
            )
        return self._estimate_bytes_per_s

    def observe_fraction(
        self, delivered_fraction: float, rng: np.random.Generator
    ) -> float:
        """Fold a delivery-fraction measurement into the estimate.

        The emulated receiver reports the fraction of packets that arrived;
        the sender multiplies it by each group's nominal rate to get the
        sustainable goodput — equivalent to the paper's arrival-spacing
        estimate (losses stretch arrival gaps by exactly this factor) but
        independent of how much of the frame budget the group occupied.
        """
        if not 0.0 <= delivered_fraction <= 1.0:
            raise TransportError(
                f"fraction must be in [0, 1], got {delivered_fraction}"
            )
        return self.observe_window(delivered_fraction, 1.0, rng)

    def decay(self, factor: float) -> Optional[float]:
        """Exponentially shrink a stale estimate (graceful degradation).

        When a receiver's feedback report is lost, the sender keeps pacing
        at the last-known-good rate but trusts it a little less every
        frame: each call multiplies the estimate by ``factor``, so a long
        feedback outage converges toward a conservative floor instead of
        pinning a possibly-dead link at its last healthy rate.

        Returns:
            The decayed estimate, or ``None`` if no measurement exists yet
            (nothing to decay).
        """
        if not 0.0 < factor <= 1.0:
            raise TransportError(f"decay factor must be in (0, 1], got {factor}")
        if self._estimate_bytes_per_s is not None:
            self._estimate_bytes_per_s = max(
                self._estimate_bytes_per_s * factor, 1e-9
            )
        return self._estimate_bytes_per_s

    def reset(self) -> None:
        """Forget all measurements (e.g. after re-association)."""
        self._estimate_bytes_per_s = None


class CohortBandwidthEstimator:
    """Whole-cohort bandwidth estimation as parallel arrays.

    One float64 estimate row per receiver plus a has-measurement mask,
    addressed through a user-index map.  The per-step arithmetic is the
    exact EWMA of :class:`BandwidthEstimator`, applied elementwise, and the
    batched observe draws its measurement noise through a single
    ``rng.normal(..., size=n)`` — which numpy fills in the same stream
    order as ``n`` sequential scalar draws, so cohort and per-user
    sessions stay bit-identical at equal seeds.

    Per-user compatibility (the seed path, joins/resets, strategies poking
    a single estimate) goes through :meth:`view`, a scalar adapter with the
    :class:`BandwidthEstimator` interface writing through to the arrays.

    Args:
        users: Receiver ids; fixes the array row order.
        smoothing: EWMA factor, as for :class:`BandwidthEstimator`.
        noise_std_fraction: Relative measurement noise.
    """

    def __init__(
        self,
        users: Sequence[int],
        smoothing: float = 0.6,
        noise_std_fraction: float = 0.05,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise TransportError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self.noise_std_fraction = float(noise_std_fraction)
        self.users: List[int] = list(users)
        self._index: Dict[int, int] = {u: i for i, u in enumerate(self.users)}
        n = len(self.users)
        self._est = np.zeros(n, dtype=np.float64)
        self._has = np.zeros(n, dtype=bool)

    def __len__(self) -> int:
        return len(self.users)

    def rows(self, users: Sequence[int]) -> np.ndarray:
        """Array rows for ``users`` (KeyError on an unknown receiver)."""
        return np.fromiter(
            (self._index[u] for u in users), dtype=np.intp, count=len(users)
        )

    def estimates(self) -> np.ndarray:
        """Current estimates (bytes/s), NaN where no measurement exists."""
        return np.where(self._has, self._est, np.nan)

    def has_estimate(self) -> np.ndarray:
        """Boolean per-row has-a-measurement mask (read-only view)."""
        return self._has

    def observe_fraction_rows(
        self,
        rows: np.ndarray,
        fractions: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Fold delivery-fraction measurements for ``rows`` in, batched.

        One noise draw per row, in row order.  Returns the updated
        estimates for ``rows``.
        """
        fractions = np.asarray(fractions, dtype=np.float64)
        if fractions.size and (
            float(fractions.min()) < 0.0 or float(fractions.max()) > 1.0
        ):
            raise TransportError("fractions must be in [0, 1]")
        # Exact op order of BandwidthEstimator.observe_window with a 1 s
        # window: floor at 0, noise multiply, floor at 1e-9, EWMA.
        measured = np.maximum(0.0, fractions / 1.0)
        measured = measured * (
            1.0 + rng.normal(0.0, self.noise_std_fraction, size=rows.size)
        )
        measured = np.maximum(measured, 1e-9)
        seen = self._has[rows]
        updated = np.where(
            seen,
            self.smoothing * measured + (1.0 - self.smoothing) * self._est[rows],
            measured,
        )
        self._est[rows] = updated
        self._has[rows] = True
        return updated

    def decay_rows(self, rows: np.ndarray, factor: float) -> None:
        """Exponentially shrink stale estimates for ``rows`` (masked)."""
        if not 0.0 < factor <= 1.0:
            raise TransportError(f"decay factor must be in (0, 1], got {factor}")
        target = rows[self._has[rows]]
        if target.size:
            self._est[target] = np.maximum(self._est[target] * factor, 1e-9)

    def reset_rows(self, rows: np.ndarray) -> None:
        """Forget all measurements for ``rows`` (re-association)."""
        self._has[rows] = False
        self._est[rows] = 0.0

    def view(self, user: int) -> "_CohortBandwidthView":
        """A per-user :class:`BandwidthEstimator`-compatible adapter."""
        return _CohortBandwidthView(self, self._index[user])


class _CohortBandwidthView:
    """Scalar adapter over one :class:`CohortBandwidthEstimator` row.

    Arithmetic mirrors :class:`BandwidthEstimator` operation for operation,
    so a session can mix scalar updates (seed path, observability runs)
    and batched updates over the same state without divergence.
    """

    def __init__(self, parent: CohortBandwidthEstimator, row: int) -> None:
        self._parent = parent
        self._row = row

    @property
    def parent(self) -> CohortBandwidthEstimator:
        return self._parent

    @property
    def estimate_bytes_per_s(self) -> Optional[float]:
        """Current smoothed estimate, or None before the first measurement."""
        parent, row = self._parent, self._row
        if not parent._has[row]:
            return None
        return float(parent._est[row])

    def observe_window(
        self,
        delivered_bytes: float,
        window_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Scalar twin of :meth:`BandwidthEstimator.observe_window`."""
        if window_s <= 0:
            raise TransportError(f"window must be positive, got {window_s}")
        parent, row = self._parent, self._row
        measured = max(0.0, delivered_bytes / window_s)
        measured *= float(1.0 + rng.normal(0.0, parent.noise_std_fraction))
        measured = max(measured, 1e-9)
        if parent._has[row]:
            value = (
                parent.smoothing * measured
                + (1.0 - parent.smoothing) * float(parent._est[row])
            )
        else:
            value = measured
        parent._est[row] = value
        parent._has[row] = True
        return value

    def observe_fraction(
        self, delivered_fraction: float, rng: np.random.Generator
    ) -> float:
        """Scalar twin of :meth:`BandwidthEstimator.observe_fraction`."""
        if not 0.0 <= delivered_fraction <= 1.0:
            raise TransportError(
                f"fraction must be in [0, 1], got {delivered_fraction}"
            )
        return self.observe_window(delivered_fraction, 1.0, rng)

    def decay(self, factor: float) -> Optional[float]:
        """Scalar twin of :meth:`BandwidthEstimator.decay`."""
        if not 0.0 < factor <= 1.0:
            raise TransportError(f"decay factor must be in (0, 1], got {factor}")
        parent, row = self._parent, self._row
        if not parent._has[row]:
            return None
        parent._est[row] = max(float(parent._est[row]) * factor, 1e-9)
        return float(parent._est[row])

    def reset(self) -> None:
        """Forget this receiver's measurements."""
        parent, row = self._parent, self._row
        parent._has[row] = False
        parent._est[row] = 0.0
