"""Per-frame packet transmission over the emulated links.

Executes one video frame's transmission plan inside the 1/FR deadline:

1. **Initial pass** — walk the coding-group assignments in order (lower
   layers first), pacing each multicast group with its leaky bucket at
   ``min(MCS rate, fed-back bandwidth)``; every packet is independently
   delivered to each group member according to the SNR-margin PER under the
   *true* channel.  Switching between groups costs the 25 us firmware beam /
   MCS reconfiguration the paper measured (Sec 3.1).
2. **Feedback rounds** — receivers report per-sublayer reception counts; the
   sender computes the deficit P per unit and sends P makeup packets (fresh
   fountain symbols, or — without source coding — the exact missing
   segments), lowest layers first, until the deadline.

Without rate control the initial pass instead dumps the whole burst into a
finite kernel queue (Sec 4.2.3 ablation): overflow tail-drops uniformly over
the burst, so losses hit base layers too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TransportError
from ..fountain.block import (
    DENSE_CODEC,
    CodingUnitId,
    FrameBlockDecoder,
    FrameBlockEncoder,
)
from ..obs import OBS
from ..perf.mode import seed_path_active
from ..phy.channel import ChannelState
from ..scheduling.coding_groups import UnitAssignment
from ..scheduling.groups import CandidateGroup
from .cohort import CohortUserReception, FrameCohort, UserTallies, UserTally
from .kernel_queue import KernelQueue
from .link import LinkModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.controller import ApScopedFaults, FaultController

    #: Anything the transmitter consults for faults: the session's
    #: controller, or one AP's scoped view of it.
    FaultView = Union["FaultController", "ApScopedFaults"]

#: Firmware beam + MCS switch overhead (Sec 3.1: ~25 us).
GROUP_SWITCH_OVERHEAD_S = 25e-6

#: UDP/IP/MAC header overhead per packet, bytes.
HEADER_BYTES = 64

#: One-way latency of a feedback report.
FEEDBACK_LATENCY_S = 5e-4


@dataclass
class _TxState:
    """Mutable clock/counters threaded through the transmission passes."""

    clock_s: float
    packets_sent: int
    dropped_at_queue: int


#: Cross-frame per-receiver tally snapshot; the live state is the
#: struct-of-arrays :class:`repro.transport.cohort.UserTallies`.
_UserTxState = UserTally


@dataclass
class UserReception:
    """What one receiver got out of a frame transmission."""

    decoder: FrameBlockDecoder
    delivered_payload_bytes: float = 0.0
    packets_received: int = 0
    packets_lost: int = 0


@dataclass
class TransmissionResult:
    """Outcome of one frame's transmission.

    Attributes:
        receptions: Per-user reception state (decoders hold the symbols).
        airtime_s: Total air/queue time consumed.
        packets_sent: Packets put on the air (post rate-control/queue).
        packets_dropped_at_queue: Packets lost in the kernel queue (only in
            the no-rate-control mode).
        feedback_rounds_used: Retransmission rounds that actually ran.
        cohort: Struct-of-arrays reception state when the vectorized path
            ran (None on the seed / observability per-user path); cohort-
            aware pipeline stages read it instead of per-user decoders.
    """

    receptions: Dict[int, UserReception]
    airtime_s: float
    packets_sent: int
    packets_dropped_at_queue: int
    feedback_rounds_used: int
    cohort: Optional[FrameCohort] = None


@dataclass
class FrameTransmitter:
    """Transmits framed symbol schedules over emulated links.

    Args:
        link: Per-packet delivery model (true channels + pseudo multicast).
        rate_control: Leaky-bucket pacing with bandwidth feedback (Sec 2.7);
            when False, the kernel-queue burst model applies.
        source_coding: Fountain coding on (fresh symbols, Sec 2.6) or off
            (plain segments, duplicated across groups).
        max_feedback_rounds: Retransmission rounds within the deadline.
        kernel_queue: Queue model for the no-rate-control mode.
        bucket_capacity_packets: Leaky-bucket depth in packets.
    """

    link: LinkModel
    rate_control: bool = True
    source_coding: bool = True
    max_feedback_rounds: int = 2
    kernel_queue: Optional[KernelQueue] = None
    bucket_capacity_packets: int = 10
    _tallies: UserTallies = field(
        default_factory=UserTallies, init=False, repr=False, compare=False
    )

    def transmit(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
        true_state: ChannelState,
        budget_s: float,
        rng: np.random.Generator,
        rate_limits_bytes_per_s: Optional[Dict[int, float]] = None,
        active_users: Optional[Sequence[int]] = None,
        faults: Optional["FaultView"] = None,
        allow_cohort: bool = True,
    ) -> TransmissionResult:
        """Run one frame's transmission and return per-user receptions.

        Args:
            encoder: The frame's fountain encoders.
            assignments: Ordered (group, layer, sublayer, bytes) plan.
            groups: Candidate groups the assignments index into.
            true_state: Ground-truth channels during this frame.
            budget_s: Frame deadline (1/FR).
            rng: Loss and queue randomness.
            rate_limits_bytes_per_s: Per-group bandwidth-feedback caps
                (from the previous frame's receiver estimates).
            active_users: Receivers currently in the session; ``None``
                means every user in ``true_state`` (no churn).
            faults: Active fault controller (or an AP-scoped view of one);
                applies blockage/SNR-dip attenuation through the link
                wrapper and packet-erasure bursts on the delivery
                probabilities.
            allow_cohort: When False, stay on the per-user reception path
                even in optimized mode.  The multi-AP pipeline merges
                several per-AP passes and repairs decoders across APs, so
                it needs per-user decoder objects, not a cohort.
        """
        if budget_s <= 0:
            raise TransportError(f"budget must be positive, got {budget_s}")
        if not OBS.mode:
            return self._transmit(
                encoder, assignments, groups, true_state, budget_s, rng,
                rate_limits_bytes_per_s, active_users, faults, allow_cohort,
            )
        with OBS.span(
            "transport.transmit", frame=encoder.frame_index
        ) as span:
            result = self._transmit(
                encoder, assignments, groups, true_state, budget_s, rng,
                rate_limits_bytes_per_s, active_users, faults, allow_cohort,
            )
            span.set(
                packets_sent=result.packets_sent,
                packets_dropped_at_queue=result.packets_dropped_at_queue,
                airtime_s=result.airtime_s,
                feedback_rounds=result.feedback_rounds_used,
                users=len(result.receptions),
            )
        OBS.count("transport.packets_sent", result.packets_sent)
        OBS.count(
            "transport.packets_dropped_at_queue", result.packets_dropped_at_queue
        )
        for user, reception in result.receptions.items():
            OBS.count(
                f"transport.user.{user}.delivered", reception.packets_received
            )
            OBS.count(f"transport.user.{user}.lost", reception.packets_lost)
        return result

    def _transmit(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
        true_state: ChannelState,
        budget_s: float,
        rng: np.random.Generator,
        rate_limits_bytes_per_s: Optional[Dict[int, float]] = None,
        active_users: Optional[Sequence[int]] = None,
        faults: Optional["FaultView"] = None,
        allow_cohort: bool = True,
    ) -> TransmissionResult:
        users = true_state.user_ids
        if active_users is not None:
            present = set(active_users)
            users = [u for u in users if u in present]
        limits = rate_limits_bytes_per_s or {}
        packet_bytes = encoder.symbol_size + HEADER_BYTES

        # Resolve the effective pacing rate per group.
        rates: Dict[int, float] = {}
        for group in groups:
            rate = group.rate_bytes_per_s
            if self.rate_control and group.index in limits:
                rate = min(rate, max(limits[group.index], packet_bytes / budget_s))
            rates[group.index] = max(rate, 1e-6)

        state = _TxState(clock_s=0.0, packets_sent=0, dropped_at_queue=0)
        plan = self._expand_assignments(encoder, assignments, groups)

        if (
            allow_cohort
            and encoder.codec == DENSE_CODEC
            and not seed_path_active()
            and not OBS.mode
        ):
            # Vectorized cohort path: struct-of-arrays receiver state, one
            # batched Bernoulli comparison per coding group.  Observability
            # runs stay on the per-user path so the per-packet counters and
            # fountain decode events keep firing.  The cohort's rank oracle
            # is specific to the dense code's coefficient cache, so precode
            # sessions use the per-user decoders.
            return self._transmit_cohort(
                encoder, assignments, groups, users, plan, rates, true_state,
                packet_bytes, budget_s, state, rng, faults,
            )

        receptions = {
            u: UserReception(
                decoder=FrameBlockDecoder(
                    encoder.frame_index,
                    encoder.structure,
                    encoder.symbol_size,
                    codec=encoder.codec,
                )
            )
            for u in users
        }

        # Delivery probabilities are deterministic per group within a frame
        # (fixed beam, MCS and true channel), so memoize them across plan
        # entries and feedback rounds; the seed path recomputes every time.
        prob_cache: Optional[Dict[int, Dict[int, float]]] = (
            None if seed_path_active() else {}
        )

        if self.rate_control:
            self._paced_pass(plan, groups, rates, true_state, receptions,
                             packet_bytes, budget_s, state, rng, prob_cache,
                             faults)
        else:
            self._burst_pass(plan, groups, rates, true_state, receptions,
                             packet_bytes, budget_s, state, rng, faults)

        rounds = 0
        for _ in range(max(0, self.max_feedback_rounds)):
            if state.clock_s + FEEDBACK_LATENCY_S >= budget_s:
                break
            state.clock_s += FEEDBACK_LATENCY_S
            makeup = self._makeup_plan(encoder, assignments, groups, receptions)
            if not makeup:
                break
            rounds += 1
            self._paced_pass(makeup, groups, rates, true_state, receptions,
                             packet_bytes, budget_s, state, rng, prob_cache,
                             faults)

        for user, reception in receptions.items():
            self._tallies.add(
                user, reception.packets_received, reception.packets_lost
            )

        return TransmissionResult(
            receptions=receptions,
            airtime_s=min(state.clock_s, budget_s),
            packets_sent=state.packets_sent,
            packets_dropped_at_queue=state.dropped_at_queue,
            feedback_rounds_used=rounds,
        )

    def _transmit_cohort(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
        users: List[int],
        plan: List[Tuple[int, CodingUnitId, list]],
        rates: Dict[int, float],
        true_state: ChannelState,
        packet_bytes: int,
        budget_s: float,
        state: _TxState,
        rng: np.random.Generator,
        faults: Optional["FaultView"],
    ) -> TransmissionResult:
        """Cohort-vectorized twin of the per-user transmission body.

        The draw-ordering contract: every plan entry consumes exactly the
        same rng stream as the per-user path — one ``rng.random((symbols,
        members))`` block per paced entry (drawn before the deadline cut),
        one ``rng.random(members)`` per *sent* burst packet (batched as
        ``(run, members)`` blocks, which numpy fills in the same order) —
        so both paths are bit-identical at equal seeds.
        """
        cohort = FrameCohort(users, encoder)
        prob_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

        if self.rate_control:
            self._paced_pass_cohort(plan, groups, rates, true_state, cohort,
                                    packet_bytes, budget_s, state, rng,
                                    prob_cache, faults)
        else:
            self._burst_pass_cohort(plan, groups, rates, true_state, cohort,
                                    packet_bytes, budget_s, state, rng,
                                    prob_cache, faults)

        rounds = 0
        for _ in range(max(0, self.max_feedback_rounds)):
            if state.clock_s + FEEDBACK_LATENCY_S >= budget_s:
                break
            state.clock_s += FEEDBACK_LATENCY_S
            makeup = self._makeup_plan_cohort(encoder, assignments, groups,
                                              cohort)
            if not makeup:
                break
            rounds += 1
            self._paced_pass_cohort(makeup, groups, rates, true_state, cohort,
                                    packet_bytes, budget_s, state, rng,
                                    prob_cache, faults)

        self._tallies.update_frame(
            cohort.users, cohort.packets_received, cohort.packets_lost
        )

        receptions: Dict[int, UserReception] = {
            u: CohortUserReception(cohort, i)  # type: ignore[misc]
            for i, u in enumerate(cohort.users)
        }
        return TransmissionResult(
            receptions=receptions,
            airtime_s=min(state.clock_s, budget_s),
            packets_sent=state.packets_sent,
            packets_dropped_at_queue=state.dropped_at_queue,
            feedback_rounds_used=rounds,
            cohort=cohort,
        )

    # ------------------------------------------------------------------ plan

    def _expand_assignments(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
    ) -> List[Tuple[int, CodingUnitId, list]]:
        """Turn byte budgets into concrete symbol lists per (group, unit)."""
        plan = []
        for assignment in assignments:
            count = int(np.ceil(assignment.nbytes / encoder.symbol_size - 1e-9))
            if count <= 0:
                continue
            unit = CodingUnitId(
                encoder.frame_index, assignment.layer, assignment.sublayer
            )
            if self.source_coding:
                symbols = encoder.next_symbols(unit, count)
            else:
                # Plain segments: every group's stream restarts at segment 0,
                # so overlapping groups duplicate each other.
                k = encoder.symbols_per_unit()
                symbols = [encoder.symbol_at(unit, i % k) for i in range(count)]
            plan.append((assignment.group_index, unit, symbols))
        return plan

    def _makeup_plan(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
        receptions: Dict[int, UserReception],
    ) -> List[Tuple[int, CodingUnitId, list]]:
        """Retransmission plan from per-sublayer feedback (Sec 2.6)."""
        k = encoder.symbols_per_unit()
        plan = []
        seen_units = set()
        for assignment in assignments:
            unit = CodingUnitId(
                encoder.frame_index, assignment.layer, assignment.sublayer
            )
            key = (assignment.group_index, unit)
            if key in seen_units:
                continue
            seen_units.add(key)
            group = groups[assignment.group_index]
            members = [u for u in group.user_ids if u in receptions]
            if not members:
                continue
            if self.source_coding:
                deficit = max(
                    k - receptions[u].decoder.unit_decoder(unit).received_count
                    for u in members
                )
                if deficit <= 0:
                    continue
                plan.append(
                    (assignment.group_index, unit, encoder.next_symbols(unit, deficit))
                )
            else:
                missing: set = set()
                for u in members:
                    decoder = receptions[u].decoder.unit_decoder(unit)
                    if not decoder.is_decoded:
                        missing |= set(range(k)) - decoder.received_ids()
                if not missing:
                    continue
                symbols = [encoder.symbol_at(unit, i) for i in sorted(missing)]
                plan.append((assignment.group_index, unit, symbols))
        return plan

    def _makeup_plan_cohort(
        self,
        encoder: FrameBlockEncoder,
        assignments: Sequence[UnitAssignment],
        groups: Sequence[CandidateGroup],
        cohort: FrameCohort,
    ) -> List[Tuple[int, CodingUnitId, list]]:
        """Retransmission plan read from cohort arrays (no decoders)."""
        k = encoder.symbols_per_unit()
        plan = []
        seen_units = set()
        for assignment in assignments:
            unit = CodingUnitId(
                encoder.frame_index, assignment.layer, assignment.sublayer
            )
            key = (assignment.group_index, unit)
            if key in seen_units:
                continue
            seen_units.add(key)
            group = groups[assignment.group_index]
            member_rows = cohort.member_rows(group.user_ids)
            if member_rows.size == 0:
                continue
            if self.source_coding:
                deficit = k - cohort.min_distinct(unit, member_rows)
                if deficit <= 0:
                    continue
                plan.append(
                    (assignment.group_index, unit, encoder.next_symbols(unit, deficit))
                )
            else:
                missing = cohort.plain_missing(unit, member_rows)
                if not missing:
                    continue
                symbols = [encoder.symbol_at(unit, i) for i in missing]
                plan.append((assignment.group_index, unit, symbols))
        return plan

    # ------------------------------------------------------------------ passes

    def _paced_pass(
        self, plan, groups, rates, true_state, receptions,
        packet_bytes, budget_s, state, rng, prob_cache=None, faults=None,
    ) -> None:
        last_group = -1
        for group_index, _unit, symbols in plan:
            if not symbols:
                continue
            group = groups[group_index]
            if group.plan.mcs is None:
                continue
            if group_index != last_group:
                state.clock_s += GROUP_SWITCH_OVERHEAD_S
                last_group = group_index
            if prob_cache is None:
                probs = self._member_probs(group, true_state, receptions, faults)
            elif group_index in prob_cache:
                probs = prob_cache[group_index]
            else:
                probs = self._member_probs(group, true_state, receptions, faults)
                prob_cache[group_index] = probs
            airtime = packet_bytes / rates[group_index]
            draws = rng.random((len(symbols), len(probs)))
            for s_idx, symbol in enumerate(symbols):
                if state.clock_s + airtime > budget_s:
                    return
                state.clock_s += airtime
                state.packets_sent += 1
                self._deliver(symbol, probs, draws[s_idx], receptions)

    def _burst_pass(
        self, plan, groups, rates, true_state, receptions,
        packet_bytes, budget_s, state, rng, faults=None,
    ) -> None:
        """No rate control: one big burst through the kernel queue."""
        queue = self.kernel_queue or KernelQueue()
        flat = [
            (group_index, symbol)
            for group_index, _unit, symbols in plan
            for symbol in symbols
        ]
        if not flat:
            return
        mean_rate = float(np.mean([rates[g] for g, _ in flat]))
        mask = queue.admitted_mask(
            len(flat), packet_bytes, mean_rate, budget_s, rng
        )
        state.dropped_at_queue += int((~mask).sum())
        member_prob_cache: Dict[int, Dict[int, float]] = {}
        for (group_index, symbol), admitted in zip(flat, mask):
            airtime = packet_bytes / rates[group_index]
            if state.clock_s + airtime > budget_s:
                break
            if not admitted:
                continue
            group = groups[group_index]
            if group.plan.mcs is None:
                continue
            state.clock_s += airtime
            state.packets_sent += 1
            if group_index not in member_prob_cache:
                member_prob_cache[group_index] = self._member_probs(
                    group, true_state, receptions, faults
                )
            probs = member_prob_cache[group_index]
            draws = rng.random(len(probs))
            self._deliver(symbol, probs, draws, receptions)

    def _paced_pass_cohort(
        self, plan, groups, rates, true_state, cohort,
        packet_bytes, budget_s, state, rng, prob_cache, faults=None,
    ) -> None:
        """Paced pass over cohort arrays: one draw block + one boolean
        compare per plan entry, scalar clock walk for the deadline cut."""
        last_group = -1
        for group_index, unit, symbols in plan:
            if not symbols:
                continue
            group = groups[group_index]
            if group.plan.mcs is None:
                continue
            if group_index != last_group:
                state.clock_s += GROUP_SWITCH_OVERHEAD_S
                last_group = group_index
            member_rows, probs = self._cohort_probs(
                group, true_state, cohort, prob_cache, faults
            )
            airtime = packet_bytes / rates[group_index]
            draws = rng.random((len(symbols), len(probs)))
            n_send = 0
            cut = False
            for _ in symbols:
                if state.clock_s + airtime > budget_s:
                    cut = True
                    break
                state.clock_s += airtime
                state.packets_sent += 1
                n_send += 1
            if n_send:
                delivered = draws[:n_send] < probs[None, :]
                cohort.record(unit, symbols[:n_send], member_rows, delivered)
            if cut:
                return

    def _burst_pass_cohort(
        self, plan, groups, rates, true_state, cohort,
        packet_bytes, budget_s, state, rng, prob_cache, faults=None,
    ) -> None:
        """No rate control, cohort arrays: the queue/clock walk is decided
        first (it draws no per-member randomness), then delivery draws are
        batched per contiguous same-group run of sent packets."""
        queue = self.kernel_queue or KernelQueue()
        flat = [
            (group_index, unit, symbol)
            for group_index, unit, symbols in plan
            for symbol in symbols
        ]
        if not flat:
            return
        mean_rate = float(np.mean([rates[g] for g, _, _ in flat]))
        mask = queue.admitted_mask(
            len(flat), packet_bytes, mean_rate, budget_s, rng
        )
        state.dropped_at_queue += int((~mask).sum())
        sent: List[Tuple[int, CodingUnitId, object]] = []
        for (group_index, unit, symbol), admitted in zip(flat, mask):
            airtime = packet_bytes / rates[group_index]
            if state.clock_s + airtime > budget_s:
                break
            if not admitted:
                continue
            if groups[group_index].plan.mcs is None:
                continue
            state.clock_s += airtime
            state.packets_sent += 1
            sent.append((group_index, unit, symbol))
        i = 0
        while i < len(sent):
            group_index = sent[i][0]
            j = i
            while j < len(sent) and sent[j][0] == group_index:
                j += 1
            member_rows, probs = self._cohort_probs(
                groups[group_index], true_state, cohort, prob_cache, faults
            )
            draws = rng.random((j - i, len(probs)))
            a = i
            while a < j:
                unit = sent[a][1]
                b = a
                while b < j and sent[b][1] == unit:
                    b += 1
                delivered = draws[a - i:b - i] < probs[None, :]
                cohort.record(
                    unit, [entry[2] for entry in sent[a:b]], member_rows,
                    delivered,
                )
                a = b
            i = j

    # ------------------------------------------------------------------ utils

    def _member_probs(
        self,
        group: CandidateGroup,
        true_state: ChannelState,
        receptions: Dict[int, UserReception],
        faults: Optional["FaultView"] = None,
    ) -> Dict[int, float]:
        link = self.link if faults is None else faults.wrap_link(self.link)
        probs = {
            u: link.delivery_probability(
                u, group.plan.beam, true_state, group.plan.mcs
            )
            for u in group.user_ids
            if u in receptions
        }
        if faults is not None:
            # Erasure bursts kill packets independently of the channel:
            # scaling the delivery probability (instead of drawing extra
            # randomness) keeps the rng stream — and hence zero-intensity
            # runs — bit-identical to the fault-free path.
            scale = faults.erasure_scale()
            if scale < 1.0:
                probs = {u: p * scale for u, p in probs.items()}
        return probs

    def _cohort_probs(
        self,
        group: CandidateGroup,
        true_state: ChannelState,
        cohort: FrameCohort,
        prob_cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
        faults: Optional["FaultView"] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(member rows, delivery probabilities) for a group, memoized.

        Member order matches :meth:`_member_probs` (group order filtered to
        cohort membership) so draw columns line up across paths.
        """
        cached = prob_cache.get(group.index)
        if cached is not None:
            return cached
        member_ids = [u for u in group.user_ids if u in cohort.index]
        member_rows = cohort.member_rows(member_ids)
        link = self.link if faults is None else faults.wrap_link(self.link)
        probs = link.delivery_probability_array(
            member_ids, group.plan.beam, true_state, group.plan.mcs
        )
        if faults is not None:
            scale = faults.erasure_scale()
            if scale < 1.0:
                probs = probs * scale
        entry = (member_rows, probs)
        prob_cache[group.index] = entry
        return entry

    # --------------------------------------------------------- churn state

    def user_state(self, user: int) -> Optional[_UserTxState]:
        """Cross-frame delivery tally for ``user`` (None if never served)."""
        return self._tallies.get(user)

    def tracked_users(self) -> List[int]:
        """Users the transmitter currently holds per-receiver state for."""
        return self._tallies.tracked()

    def evict_user(self, user: int) -> None:
        """Drop per-receiver state when ``user`` leaves the session.

        Without this, churn leaks an entry per departed receiver for the
        lifetime of the transmitter (they re-accumulate from scratch on
        rejoin, as after a real re-association).
        """
        self._tallies.evict(user)
        if OBS.mode:
            OBS.count("transport.users_evicted")

    @staticmethod
    def _deliver(symbol, probs: Dict[int, float], draws, receptions) -> None:
        for (user, prob), draw in zip(probs.items(), np.atleast_1d(draws)):
            reception = receptions[user]
            if draw < prob:
                reception.decoder.ingest(symbol)
                reception.packets_received += 1
                reception.delivered_payload_bytes += len(symbol.payload)
            else:
                reception.packets_lost += 1
