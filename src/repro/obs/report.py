"""Aggregate observability report built from a registry snapshot.

Turns the raw counters/histograms an instrumented run accumulated into the
numbers a human (or CI) asks first: per-stage latency quantiles, fountain
symbol throughput, and per-receiver delivery ratios.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .registry import ObsRegistry

#: The pipeline stages the hot path instruments (span histogram names).
#: ``frame.stage.*`` are the session-pipeline stage boundaries emitted by
#: :class:`repro.core.pipeline.StreamSession`.
PIPELINE_STAGES = (
    "frame.stream",
    "frame.stage.plan",
    "frame.stage.encode",
    "frame.stage.map",
    "frame.stage.transmit",
    "frame.stage.feedback",
    "frame.stage.score",
    "encode.jigsaw",
    "encode.fountain",
    "decode.fountain",
    "schedule.allocate",
    "transport.transmit",
    "emulation.run",
)

#: Counter-name prefixes for the per-receiver delivery tallies.
DELIVERED_PREFIX = "transport.user."
DELIVERED_SUFFIX = ".delivered"
LOST_SUFFIX = ".lost"


def build_report(registry: ObsRegistry) -> Dict[str, Any]:
    """Aggregate a registry's metrics into one report dict."""
    histograms = registry.histograms()
    counters = registry.counters()

    stages: Dict[str, Dict[str, float]] = {}
    for name in PIPELINE_STAGES:
        hist = histograms.get(name)
        if hist is None or not hist.count:
            continue
        qs = hist.quantiles((0.50, 0.95, 0.99))
        stages[name] = {
            "count": hist.count,
            "total_s": hist.sum,
            "mean_ms": hist.mean * 1e3,
            "p50_ms": qs[0.50] * 1e3,
            "p95_ms": qs[0.95] * 1e3,
            "p99_ms": qs[0.99] * 1e3,
            "max_ms": hist.max * 1e3,
        }

    throughput: Dict[str, float] = {}
    encode_hist = histograms.get("encode.fountain")
    symbols_encoded = counters.get("fountain.symbols_encoded", 0.0)
    if encode_hist is not None and encode_hist.sum > 0 and symbols_encoded:
        throughput["fountain_encode_symbols_per_s"] = (
            symbols_encoded / encode_hist.sum
        )
    decode_hist = histograms.get("decode.fountain")
    symbols_received = counters.get("fountain.symbols_received", 0.0)
    if decode_hist is not None and decode_hist.sum > 0 and symbols_received:
        throughput["fountain_decode_symbols_per_s"] = (
            symbols_received / decode_hist.sum
        )

    delivery: Dict[str, Dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith(DELIVERED_PREFIX):
            continue
        middle = name[len(DELIVERED_PREFIX):]
        if middle.endswith(DELIVERED_SUFFIX):
            user, key = middle[: -len(DELIVERED_SUFFIX)], "delivered"
        elif middle.endswith(LOST_SUFFIX):
            user, key = middle[: -len(LOST_SUFFIX)], "lost"
        else:
            continue
        delivery.setdefault(user, {"delivered": 0.0, "lost": 0.0})[key] = value
    for stats in delivery.values():
        total = stats["delivered"] + stats["lost"]
        stats["ratio"] = stats["delivered"] / total if total else 1.0

    frames = counters.get("frames.streamed", 0.0)
    deadline_missed = counters.get("frames.deadline_missed", 0.0)

    return {
        "schema": 1,
        "mode": registry.mode_name,
        "stages": stages,
        "throughput": throughput,
        "delivery": {u: delivery[u] for u in sorted(delivery)},
        "frames": {
            "streamed": frames,
            "deadline_missed": deadline_missed,
            "deadline_hit_ratio": (
                (frames - deadline_missed) / frames if frames else float("nan")
            ),
        },
        "counters": counters,
        "gauges": registry.gauges(),
        "trace_events": len(registry.trace),
    }


def format_report(report: Dict[str, Any]) -> str:
    """Render a report as an aligned, human-readable text block."""
    lines = [f"=== Observability report (mode={report['mode']}) ==="]
    if report["stages"]:
        lines.append("")
        lines.append(
            f"{'stage':<20} {'calls':>7} {'total s':>9} {'p50 ms':>9} "
            f"{'p95 ms':>9} {'p99 ms':>9}"
        )
        for name, s in report["stages"].items():
            lines.append(
                f"{name:<20} {s['count']:>7d} {s['total_s']:>9.3f} "
                f"{s['p50_ms']:>9.3f} {s['p95_ms']:>9.3f} {s['p99_ms']:>9.3f}"
            )
    if report["throughput"]:
        lines.append("")
        for key, value in report["throughput"].items():
            lines.append(f"{key:<36} {value:>12.1f}")
    if report["delivery"]:
        lines.append("")
        lines.append(f"{'receiver':<10} {'delivered':>10} {'lost':>8} {'ratio':>7}")
        for user, stats in report["delivery"].items():
            lines.append(
                f"{user:<10} {stats['delivered']:>10.0f} {stats['lost']:>8.0f} "
                f"{stats['ratio']:>7.3f}"
            )
    frames = report["frames"]
    if frames["streamed"]:
        lines.append("")
        lines.append(
            f"frames streamed {frames['streamed']:.0f}, deadline hit ratio "
            f"{frames['deadline_hit_ratio']:.3f}"
        )
    lines.append("")
    lines.append(f"trace events: {report['trace_events']}")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a report as stable, diff-friendly JSON."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
