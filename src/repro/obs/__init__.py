"""Pipeline observability: counters, span timers, traces and reports.

``repro.obs`` is the runtime telemetry layer of the reproduction.  Every
pipeline stage — jigsaw encode, fountain encode/decode, time-allocation
scheduling, transport, and the emulation runners — reports into the
process-wide :data:`OBS` registry, which costs one branch per call while
disabled and produces per-stage latency histograms, counters and a JSONL
per-frame trace when enabled.

Control it with the ``REPRO_OBS`` environment variable (``off`` |
``counters`` | ``trace``; default off), or programmatically::

    from repro import obs

    with obs.observed("trace") as registry:
        streamer.stream_trace(trace, num_frames=30)
    report = obs.build_report(registry)
    registry.trace.write_jsonl("frames.jsonl")

See ``DESIGN.md`` ("Observability") for the trace schema and the CLI entry
point (``repro-wigig observe``).
"""

from .metrics import Counter, Gauge, Histogram
from .registry import (
    COUNTERS,
    DEFAULT_TRACE_PATH,
    OBS,
    OBS_ENV_VAR,
    OBS_TRACE_ENV_VAR,
    OFF,
    TRACE,
    ObsRegistry,
    ScopedObs,
    Span,
    configure,
    observed,
    parse_mode,
    timed,
)
from .report import PIPELINE_STAGES, build_report, format_report, write_report
from .trace import (
    REQUIRED_EVENT_KEYS,
    TraceRecorder,
    read_jsonl,
    stages_covered,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "COUNTERS",
    "DEFAULT_TRACE_PATH",
    "OBS",
    "OBS_ENV_VAR",
    "OBS_TRACE_ENV_VAR",
    "OFF",
    "TRACE",
    "ObsRegistry",
    "ScopedObs",
    "Span",
    "configure",
    "observed",
    "parse_mode",
    "timed",
    "PIPELINE_STAGES",
    "build_report",
    "format_report",
    "write_report",
    "REQUIRED_EVENT_KEYS",
    "TraceRecorder",
    "read_jsonl",
    "stages_covered",
]
