"""Metric primitives: counters, gauges and numpy-backed histograms.

These are deliberately minimal — a counter is one float, a gauge is one
float, a histogram is a growing ``float64`` buffer — so incrementing them
inside the per-frame hot path costs nanoseconds and nothing allocates
unless a metric is actually touched.  Aggregation (quantiles, means) is
deferred to read time, where numpy does the work in one vectorised call.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import ConfigurationError


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A scalar that can move both ways (queue depth, last value seen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Append-only sample store with quantile queries.

    Samples land in a preallocated ``float64`` buffer that doubles when
    full (amortised O(1) per observation, no per-sample allocation).
    Quantiles, mean and max are computed lazily over the filled region.
    """

    __slots__ = ("name", "_buf", "_n")

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"histogram capacity must be positive, got {capacity}"
            )
        self.name = name
        self._buf = np.empty(capacity, dtype=np.float64)
        self._n = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._n == self._buf.shape[0]:
            grown = np.empty(self._buf.shape[0] * 2, dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = value
        self._n += 1

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._n

    @property
    def samples(self) -> np.ndarray:
        """Read-only view of the observed samples."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    @property
    def sum(self) -> float:
        return float(self._buf[: self._n].sum()) if self._n else 0.0

    @property
    def mean(self) -> float:
        return float(self._buf[: self._n].mean()) if self._n else float("nan")

    @property
    def max(self) -> float:
        return float(self._buf[: self._n].max()) if self._n else float("nan")

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._n:
            return float("nan")
        return float(np.quantile(self._buf[: self._n], q))

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        """Several quantiles in one vectorised pass."""
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._n:
            return {q: float("nan") for q in qs}
        values = np.quantile(self._buf[: self._n], list(qs))
        return {q: float(v) for q, v in zip(qs, values)}
