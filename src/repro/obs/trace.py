"""Per-frame trace recorder: JSONL event log of the streaming pipeline.

A trace event is one flat JSON object per line::

    {"stage": "transport.transmit", "frame": 3, "t_start_s": 0.0123,
     "t_end_s": 0.0151, "dur_s": 0.0028, "packets": 412, "bytes": 47560}

``stage`` and the timing triple are always present; ``frame`` is present
for events scoped to a video frame (``null`` for build-time events such as
probe encoding); everything else is stage-specific (``bytes``, ``symbols``,
``layer``, ``user``, ``group``, ...).  Timestamps are ``perf_counter``
seconds relative to the recorder's epoch, so durations and ordering are
meaningful within one process.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..errors import ConfigurationError

#: Keys every trace event carries.
REQUIRED_EVENT_KEYS = ("stage", "t_start_s", "t_end_s", "dur_s")


class TraceRecorder:
    """Buffers trace events in memory and serialises them as JSONL.

    The recorder never touches the filesystem until :meth:`write_jsonl`
    (or :meth:`flush`) is called, so trace mode adds list appends — not
    I/O — to the pipeline.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path else None
        self.epoch = time.perf_counter()
        self._events: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The buffered events (callers must not mutate them)."""
        return self._events

    def record(
        self,
        stage: str,
        t_start: float,
        t_end: float,
        frame: Optional[int] = None,
        **fields: Any,
    ) -> None:
        """Append one event; timestamps are raw ``perf_counter`` readings."""
        event: Dict[str, Any] = {
            "stage": stage,
            "frame": frame,
            "t_start_s": t_start - self.epoch,
            "t_end_s": t_end - self.epoch,
            "dur_s": t_end - t_start,
        }
        if fields:
            event.update(fields)
        self._events.append(event)

    def clear(self) -> None:
        """Drop all buffered events and restart the epoch."""
        self._events.clear()
        self.epoch = time.perf_counter()

    def write_jsonl(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the buffered events, one JSON object per line."""
        target = Path(path) if path else self.path
        if target is None:
            raise ConfigurationError("no trace path configured")
        with target.open("w") as fh:
            for event in self._events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return target

    def flush(self) -> Optional[Path]:
        """Write to the configured path, if any; no-op when pathless/empty."""
        if self.path is None or not self._events:
            return None
        return self.write_jsonl(self.path)


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace, validating each event's required keys."""
    events = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid JSON trace line: {exc}"
                ) from exc
            missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
            if missing:
                raise ConfigurationError(
                    f"{path}:{lineno}: trace event missing keys {missing}"
                )
            events.append(event)
    return events


def stages_covered(events: Iterable[Dict[str, Any]]) -> set:
    """The set of stage names appearing in a trace."""
    return {event["stage"] for event in events}
