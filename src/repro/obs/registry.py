"""The global observability registry and its ``REPRO_OBS`` mode switch.

One process-wide :data:`OBS` registry routes every instrumentation call.
Its ``mode`` attribute is the only thing hot paths look at:

* ``off`` (0) — every entry point returns immediately after a single
  attribute check; spans hand back a shared no-op singleton.  This is the
  default and is what keeps instrumented code within noise of the
  uninstrumented pipeline.
* ``counters`` (1) — counters, gauges and span histograms accumulate, but
  no per-event records are kept.
* ``trace`` (2) — everything above plus a JSONL trace event per span /
  completion, buffered in :class:`repro.obs.trace.TraceRecorder`.

Select the mode with the ``REPRO_OBS`` environment variable (read once at
import) or :func:`configure` at runtime; ``REPRO_OBS_TRACE`` names the
JSONL destination (default ``repro_obs_trace.jsonl``), flushed at process
exit when trace mode was enabled from the environment.

The registry is per-process.  Emulation fan-outs through
``repro.perf.parallel`` run workers in child processes whose telemetry is
not merged back; run observed scenarios with ``jobs=1`` (the default) to
capture a complete trace.
"""

from __future__ import annotations

import atexit
import functools
import os
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterator, Optional, Union

from ..errors import ConfigurationError
from .metrics import Counter, Gauge, Histogram
from .trace import TraceRecorder

#: Mode constants (ordered: each level includes the previous one's work).
OFF = 0
COUNTERS = 1
TRACE = 2

MODE_NAMES = {OFF: "off", COUNTERS: "counters", TRACE: "trace"}
_MODE_VALUES = {name: value for value, name in MODE_NAMES.items()}

#: Environment variables controlling the default registry.
OBS_ENV_VAR = "REPRO_OBS"
OBS_TRACE_ENV_VAR = "REPRO_OBS_TRACE"

#: Default JSONL destination when trace mode is enabled without a path.
DEFAULT_TRACE_PATH = "repro_obs_trace.jsonl"


def parse_mode(value: Union[str, int, None]) -> int:
    """Normalise a mode spelling (``"trace"``, ``2``, ``None``...)."""
    if value is None or value == "":
        return OFF
    if isinstance(value, int):
        if value in MODE_NAMES:
            return value
        raise ConfigurationError(f"invalid obs mode {value!r}")
    name = str(value).strip().lower()
    if name in _MODE_VALUES:
        return _MODE_VALUES[name]
    raise ConfigurationError(
        f"{OBS_ENV_VAR} must be one of {sorted(_MODE_VALUES)}, got {value!r}"
    )


class _NullSpan:
    """Shared do-nothing span handed out while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **fields: Any) -> None:
        """Accept (and drop) late-bound fields."""


_NULL_SPAN = _NullSpan()


class Span:
    """A timed section; records a histogram sample and (in trace mode) an
    event when the ``with`` block exits.

    Extra fields can be attached after entry via :meth:`set` — useful when
    the interesting numbers (packets sent, bytes delivered) only exist at
    the end of the section.
    """

    __slots__ = ("_registry", "stage", "frame", "fields", "_t0")

    def __init__(
        self,
        registry: "ObsRegistry",
        stage: str,
        frame: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        self._registry = registry
        self.stage = stage
        self.frame = frame
        self.fields = fields
        self._t0 = 0.0

    def set(self, **fields: Any) -> None:
        """Attach late-bound fields to the eventual trace event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._registry.record_span(
            self.stage, self._t0, perf_counter(), self.frame, self.fields
        )
        return False


class ObsRegistry:
    """Holds every counter, gauge, histogram and the trace recorder.

    All lookup methods create metrics lazily, so the set of metrics that
    exists is exactly the set the instrumented run touched.
    """

    def __init__(
        self,
        mode: Union[str, int, None] = OFF,
        trace_path: Optional[str] = None,
    ) -> None:
        self.mode = parse_mode(mode)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.trace = TraceRecorder(trace_path)

    # --------------------------------------------------------------- config

    @property
    def mode_name(self) -> str:
        return MODE_NAMES[self.mode]

    def configure(
        self,
        mode: Union[str, int, None] = None,
        trace_path: Optional[str] = None,
    ) -> "ObsRegistry":
        """Mutate the registry in place (references stay valid)."""
        if mode is not None:
            self.mode = parse_mode(mode)
        if trace_path is not None:
            self.trace.path = None if trace_path == "" else Path(trace_path)
        return self

    def reset(self) -> None:
        """Drop all metrics and buffered trace events."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.trace.clear()

    # -------------------------------------------------------------- metrics

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (no-op when off)."""
        if not self.mode:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op when off)."""
        if not self.mode:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Add a histogram sample (no-op when off)."""
        if not self.mode:
            return
        self.histogram(name).observe(value)

    # ---------------------------------------------------------------- spans

    def span(
        self, stage: str, frame: Optional[int] = None, **fields: Any
    ) -> Union[Span, _NullSpan]:
        """A context manager timing one pipeline section.

        Returns the shared no-op span when observability is off, so the
        per-call cost of disabled instrumentation is one branch.
        """
        if not self.mode:
            return _NULL_SPAN
        return Span(self, stage, frame, fields)

    def record_span(
        self,
        stage: str,
        t_start: float,
        t_end: float,
        frame: Optional[int] = None,
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold a finished timed section into histograms (and the trace)."""
        if not self.mode:
            return
        self.histogram(stage).observe(t_end - t_start)
        self.counter(f"{stage}.calls").inc()
        if self.mode >= TRACE:
            self.trace.record(stage, t_start, t_end, frame, **(fields or {}))

    def event(
        self,
        stage: str,
        t_start: float,
        t_end: float,
        frame: Optional[int] = None,
        **fields: Any,
    ) -> None:
        """Emit a bare trace event (no histogram) in trace mode only."""
        if self.mode >= TRACE:
            self.trace.record(stage, t_start, t_end, frame, **fields)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of every metric (input to the report builder)."""
        return {
            "mode": self.mode_name,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "max": h.max,
                    "p50": h.quantile(0.50),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                }
                for n, h in sorted(self._histograms.items())
            },
            "trace_events": len(self.trace),
        }

    def scoped(self, prefix: str) -> "ScopedObs":
        """A view of this registry that prefixes every metric name.

        The service layer gives each served session a scope
        (``service.session.<id>``) so many concurrent sessions can share
        the process-wide registry without colliding; ``/metrics`` then
        groups per-session counters by their prefix.
        """
        return ScopedObs(self, prefix)

    def histograms(self) -> Dict[str, Histogram]:
        """Name -> histogram mapping (live objects)."""
        return dict(self._histograms)

    def counters(self) -> Dict[str, float]:
        """Name -> counter value mapping."""
        return {n: c.value for n, c in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        """Name -> gauge value mapping."""
        return {n: g.value for n, g in self._gauges.items()}


class ScopedObs:
    """A name-prefixing facade over an :class:`ObsRegistry`.

    Every call forwards to the parent registry with ``<prefix>.`` prepended
    to the metric name, so instrumented code can be written against one
    interface whether it reports globally or into a namespace.  Scopes
    nest: ``registry.scoped("a").scoped("b")`` prefixes ``a.b.``.
    """

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: ObsRegistry, prefix: str) -> None:
        if not prefix or prefix.endswith("."):
            raise ConfigurationError(
                f"scope prefix must be a non-empty dotted name, got {prefix!r}"
            )
        self._registry = registry
        self.prefix = prefix

    @property
    def mode(self) -> int:
        return self._registry.mode

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def count(self, name: str, amount: float = 1.0) -> None:
        self._registry.count(self._name(name), amount)

    def set_gauge(self, name: str, value: float) -> None:
        self._registry.set_gauge(self._name(name), value)

    def observe(self, name: str, value: float) -> None:
        self._registry.observe(self._name(name), value)

    def span(
        self, stage: str, frame: Optional[int] = None, **fields: Any
    ) -> Union[Span, _NullSpan]:
        return self._registry.span(self._name(stage), frame=frame, **fields)

    def event(
        self,
        stage: str,
        t_start: float,
        t_end: float,
        frame: Optional[int] = None,
        **fields: Any,
    ) -> None:
        self._registry.event(
            self._name(stage), t_start, t_end, frame, **fields
        )

    def scoped(self, prefix: str) -> "ScopedObs":
        return ScopedObs(self._registry, self._name(prefix))

    def counters(self) -> Dict[str, float]:
        """This scope's counters, names relative to the prefix."""
        dotted = f"{self.prefix}."
        return {
            name[len(dotted):]: value
            for name, value in self._registry.counters().items()
            if name.startswith(dotted)
        }


def _registry_from_env() -> ObsRegistry:
    mode = parse_mode(os.environ.get(OBS_ENV_VAR))
    trace_path = os.environ.get(OBS_TRACE_ENV_VAR) or DEFAULT_TRACE_PATH
    registry = ObsRegistry(mode=mode, trace_path=trace_path)
    if mode >= TRACE:
        # Trace mode requested via the environment: make sure the JSONL
        # reaches disk even when the entry point never flushes explicitly.
        atexit.register(registry.trace.flush)
    return registry


#: The process-wide registry every instrumented module imports.
OBS = _registry_from_env()


def configure(
    mode: Union[str, int, None] = None,
    trace_path: Optional[str] = None,
) -> ObsRegistry:
    """Reconfigure the global registry (in place) and return it."""
    return OBS.configure(mode=mode, trace_path=trace_path)


@contextmanager
def observed(
    mode: Union[str, int] = "trace",
    trace_path: Optional[str] = None,
    reset: bool = True,
) -> Iterator[ObsRegistry]:
    """Temporarily switch the global registry to ``mode``.

    With ``reset=True`` (default) metrics and events are cleared on entry,
    so the block observes exactly the work it wraps.  The previous mode is
    restored on exit; buffered events survive for inspection.
    """
    previous_mode = OBS.mode
    previous_path = OBS.trace.path
    if reset:
        OBS.reset()
    OBS.configure(mode=mode, trace_path=trace_path)
    try:
        yield OBS
    finally:
        OBS.mode = previous_mode
        OBS.trace.path = previous_path


def timed(stage: str, frame: Optional[int] = None):
    """Decorator timing every call of a function as a span.

    The disabled-mode cost is one attribute check per call.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.mode:
                return fn(*args, **kwargs)
            with OBS.span(stage, frame=frame):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
