"""repro — reproduction of "Optimized Live 4K Video Multicast Streaming on
Commodity WiGig Devices" (ICDCS 2024).

A from-scratch Python implementation of the paper's entire system:

* a Jigsaw-style layered 4K video codec and synthetic video corpus
  (:mod:`repro.video`),
* the DNN video-quality model and its Table 1 baselines
  (:mod:`repro.quality`),
* a 60 GHz PHY substrate — phased arrays, image-method ray tracing, the
  QCA6320 MCS table, mobility and CSI estimation (:mod:`repro.phy`),
* the four beamforming schemes including SVD-seeded max-min multicast
  beams (:mod:`repro.beamforming`),
* a GF(256) fountain code with RaptorQ's overhead-failure property
  (:mod:`repro.fountain`),
* the Problem-1 time-allocation optimizer and Problem-4 coding-group
  greedy plus the round-robin baseline (:mod:`repro.scheduling`),
* packet transport with leaky-bucket rate control, pseudo multicast and
  sublayer feedback (:mod:`repro.transport`),
* the end-to-end multicast streamer (:mod:`repro.core`),
* Robust/Fast MPC DASH baselines (:mod:`repro.baselines`), and
* the emulation harness regenerating every table and figure
  (:mod:`repro.emulation`).

Quickstart::

    from repro.emulation import build_context, run_beamforming_comparison

    ctx = build_context()
    results = run_beamforming_comparison(ctx, num_users=2, placement=("arc", 3, 60))
"""

from .core import MulticastStreamer, StreamOutcome, SystemConfig
from .errors import ReproError
from .types import (
    AdaptationPolicy,
    BeamformingScheme,
    Richness,
    SchedulerKind,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "MulticastStreamer",
    "StreamOutcome",
    "ReproError",
    "BeamformingScheme",
    "SchedulerKind",
    "AdaptationPolicy",
    "Richness",
    "__version__",
]
