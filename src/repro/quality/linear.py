"""Ordinary least-squares linear regression (Table 1 baseline)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import QualityModelError


class LinearRegressionModel:
    """Linear regression with an intercept, solved by least squares.

    One of the three quality models compared in Table 1.  The relationship
    between layer reception and SSIM is strongly non-linear, so this model
    underfits — by design, it is the baseline the DNN is compared against.
    """

    def __init__(self) -> None:
        self._weights: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegressionModel":
        """Fit on a feature matrix ``(n, d)`` and target vector ``(n,)``."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1:
            raise QualityModelError(
                f"expected 2-D features and 1-D targets, got "
                f"{features.shape} and {targets.shape}"
            )
        if features.shape[0] != targets.shape[0]:
            raise QualityModelError(
                f"{features.shape[0]} feature rows vs {targets.shape[0]} targets"
            )
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        self._weights, *_ = np.linalg.lstsq(design, targets, rcond=None)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix ``(n, d)`` or vector ``(d,)``."""
        if self._weights is None:
            raise QualityModelError("model is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        return design @ self._weights

    def mse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared prediction error on a held-out set."""
        predictions = self.predict(features)
        return float(np.mean((predictions - np.asarray(targets, dtype=float)) ** 2))
