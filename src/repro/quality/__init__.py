"""Video quality models (paper Sec 2.3, Table 1, Fig 1).

Maps the amount of data received at each layer (plus per-frame features) to a
video quality metric (SSIM by default; the methodology also supports PSNR).
Three models are provided, mirroring Table 1: linear regression, an
epsilon-insensitive SVR, and the paper's 5-layer sigmoid DNN trained with
Adam — all implemented from scratch on numpy.
"""

from .dnn import DNNQualityModel
from .linear import LinearRegressionModel
from .svm import SVRModel
from .model import (
    QualityModel,
    TrainedQualityModels,
    train_quality_models,
    train_default_dnn,
)
from .curves import FrameFeatureContext, ProgressiveQualityCurve

__all__ = [
    "QualityModel",
    "LinearRegressionModel",
    "SVRModel",
    "DNNQualityModel",
    "TrainedQualityModels",
    "train_quality_models",
    "train_default_dnn",
    "FrameFeatureContext",
    "ProgressiveQualityCurve",
]
