"""Per-frame quality context and ground-truth quality curves.

Two distinct consumers need per-frame quality information:

* The **scheduler** (Sec 2.4) evaluates the DNN ``Q(D_1..D_4)`` while
  optimizing time allocation.  It needs the per-frame features that are
  constant during the optimization — the cumulative per-layer SSIM values and
  the blank-frame SSIM — bundled here as :class:`FrameFeatureContext`.
* **Tests and sanity checks** need a fast ground-truth quality estimate
  without running the decoder; :class:`ProgressiveQualityCurve` interpolates
  real decoded quality along the progressive-fill path (lower layers first),
  which is the path a well-behaved scheduler produces.

End-to-end emulation never uses the interpolated curve for reported numbers —
it decodes the actual delivered sublayers and measures SSIM/PSNR directly, so
reported quality is not circular with the model the optimizer climbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import QualityModelError
from ..types import NUM_LAYERS
from ..video.dataset import FrameQualityProbe


@dataclass(frozen=True)
class FrameFeatureContext:
    """Static per-frame inputs of the quality model (features 5-9, Sec 2.3).

    Attributes:
        cumulative_ssim: SSIM when everything up to layer i is received,
            for i = 0..3.
        blank_ssim: SSIM of the blank frame against this frame.
        layer_sizes: Per-layer sizes in bytes (to normalise received data
            into the model's fraction features).
    """

    cumulative_ssim: Sequence[float]
    blank_ssim: float
    layer_sizes: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.cumulative_ssim) != NUM_LAYERS:
            raise QualityModelError(
                f"need {NUM_LAYERS} cumulative SSIM values, got "
                f"{len(self.cumulative_ssim)}"
            )
        if len(self.layer_sizes) != NUM_LAYERS:
            raise QualityModelError(
                f"need {NUM_LAYERS} layer sizes, got {len(self.layer_sizes)}"
            )
        if any(s <= 0 for s in self.layer_sizes):
            raise QualityModelError("layer sizes must be positive")

    @classmethod
    def from_probe(cls, probe: FrameQualityProbe) -> "FrameFeatureContext":
        """Build the context from an encoded frame probe."""
        return cls(
            cumulative_ssim=tuple(float(v) for v in probe.cumulative_ssim),
            blank_ssim=float(probe.blank_ssim),
            layer_sizes=tuple(probe.codec.structure.layer_sizes()),
        )

    def features_for_bytes(self, bytes_per_layer: np.ndarray) -> np.ndarray:
        """Assemble 9-feature rows from per-layer byte counts.

        Args:
            bytes_per_layer: Array ``(..., 4)`` of received bytes per layer.

        Returns:
            Array ``(..., 9)`` ready for the quality model.
        """
        amounts = np.asarray(bytes_per_layer, dtype=float)
        if amounts.shape[-1] != NUM_LAYERS:
            raise QualityModelError(
                f"last axis must be {NUM_LAYERS}, got {amounts.shape}"
            )
        fractions = np.clip(amounts / np.asarray(self.layer_sizes, dtype=float), 0, 1)
        static = np.concatenate(
            [np.asarray(self.cumulative_ssim, dtype=float), [self.blank_ssim]]
        )
        tiled = np.broadcast_to(static, fractions.shape[:-1] + (NUM_LAYERS + 1,))
        return np.concatenate([fractions, tiled], axis=-1)


class ProgressiveQualityCurve:
    """Interpolated ground-truth quality along the progressive-fill path.

    Progress ``p`` in ``[0, 4]`` means layers ``0 .. floor(p)-1`` are complete
    and layer ``floor(p)`` is ``frac(p)`` received.  Quality at sampled
    progress points is measured by actually decoding; queries interpolate
    linearly.
    """

    def __init__(self, probe: FrameQualityProbe, points_per_layer: int = 4):
        if points_per_layer < 1:
            raise QualityModelError("points_per_layer must be >= 1")
        progress = np.linspace(0.0, float(NUM_LAYERS), NUM_LAYERS * points_per_layer + 1)
        ssims = []
        psnrs = []
        for p in progress:
            fractions = np.clip(p - np.arange(NUM_LAYERS), 0.0, 1.0)
            quality, quality_db = probe.measure(fractions)
            ssims.append(quality)
            psnrs.append(quality_db)
        self._progress = progress
        self._ssim = np.asarray(ssims)
        self._psnr = np.asarray(psnrs)

    def ssim_at(self, progress: float) -> float:
        """Interpolated SSIM at a progressive-fill progress in [0, 4]."""
        return float(np.interp(progress, self._progress, self._ssim))

    def psnr_at(self, progress: float) -> float:
        """Interpolated PSNR (dB) at a progressive-fill progress in [0, 4]."""
        return float(np.interp(progress, self._progress, self._psnr))

    @staticmethod
    def progress_of_fractions(fractions: Sequence[float]) -> float:
        """Collapse a per-layer fraction vector onto the progressive path.

        Exact when the vector actually is progressive; a conservative
        lower-ish summary otherwise (it just sums the fractions).
        """
        return float(np.sum(np.clip(np.asarray(fractions, dtype=float), 0.0, 1.0)))
