"""The paper's DNN video-quality model (Sec 2.3, Fig 1a), from scratch.

Architecture, exactly as published: five fully connected layers with
``in_features = out_features = 9``, each followed by a Sigmoid activation,
then a final linear layer ``9 -> 1`` producing the estimated SSIM.  Trained
with Adam on MSE loss, 500 epochs, batch size 128.

Implemented directly on numpy (no autograd): we hand-code the forward and
backward passes, including the gradient **with respect to the inputs**, which
the transmission-strategy optimizer (Sec 2.4) needs to climb the quality
surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import QualityModelError
from ..types import validate_seed

#: Input dimensionality fixed by the paper's feature design.
INPUT_FEATURES = 9

#: Number of hidden (FC + Sigmoid) layers.
HIDDEN_LAYERS = 5


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite without changing results materially.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class _AdamState:
    """Per-parameter Adam moment estimates."""

    m: List[np.ndarray]
    v: List[np.ndarray]
    step: int = 0


class DNNQualityModel:
    """Five sigmoid-activated 9x9 FC layers plus a linear head (Fig 1a).

    Args:
        learning_rate: Adam step size.
        epochs: Training epochs (paper: 500).
        batch_size: Mini-batch size (paper: 128).
        seed: Weight-initialisation and shuffling seed.
    """

    def __init__(
        self,
        learning_rate: float = 3e-3,
        epochs: int = 500,
        batch_size: int = 128,
        seed: int = 0,
    ) -> None:
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = seed
        self._params: Optional[List[np.ndarray]] = None
        self.training_loss: List[float] = []

    # --------------------------------------------------------------- plumbing

    @property
    def is_fitted(self) -> bool:
        """Whether weights exist (via :meth:`fit` or :meth:`load`)."""
        return self._params is not None

    def _init_params(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Xavier-initialised [W1, b1, ..., W6, b6]."""
        params: List[np.ndarray] = []
        dims = [INPUT_FEATURES] * (HIDDEN_LAYERS + 1) + [1]
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            params.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            params.append(np.zeros(fan_out))
        return params

    # ---------------------------------------------------------------- forward

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Return predictions ``(n,)`` and the activation cache for backprop."""
        if self._params is None:
            raise QualityModelError("model is not fitted")
        activations = [x]
        h = x
        for layer in range(HIDDEN_LAYERS):
            w, b = self._params[2 * layer], self._params[2 * layer + 1]
            h = _sigmoid(h @ w + b)
            activations.append(h)
        w, b = self._params[-2], self._params[-1]
        out = (h @ w + b).ravel()
        return out, activations

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Estimated SSIM for ``(n, 9)`` features (or a single ``(9,)`` row)."""
        x = self._check_features(features)
        out, _ = self._forward(x)
        return out

    def predict_with_input_grad(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predictions and ``d prediction / d input`` of shape ``(n, 9)``.

        Used by the Sec 2.4 optimizer: the gradient with respect to the first
        four features (per-layer reception) tells the scheduler how much
        marginal quality another unit of data buys at each layer.
        """
        x = self._check_features(features)
        out, activations = self._forward(x)
        grad = np.repeat(self._params[-2].T, x.shape[0], axis=0)  # (n, 9)
        for layer in range(HIDDEN_LAYERS - 1, -1, -1):
            act = activations[layer + 1]
            grad = (grad * act * (1.0 - act)) @ self._params[2 * layer].T
        return out, grad

    # --------------------------------------------------------------- training

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DNNQualityModel":
        """Train with Adam on MSE loss."""
        x = self._check_features(features)
        y = np.asarray(targets, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise QualityModelError(
                f"{x.shape[0]} feature rows vs {y.shape[0]} targets"
            )
        rng = validate_seed(self.seed)
        self._params = self._init_params(rng)
        adam = _AdamState(
            m=[np.zeros_like(p) for p in self._params],
            v=[np.zeros_like(p) for p in self._params],
        )
        self.training_loss = []
        n = x.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                loss = self._step(x[idx], y[idx], adam)
                epoch_loss += loss * len(idx)
            self.training_loss.append(epoch_loss / n)
        return self

    def _step(self, x: np.ndarray, y: np.ndarray, adam: _AdamState) -> float:
        """One Adam step on a mini-batch; returns the batch MSE."""
        assert self._params is not None
        out, activations = self._forward(x)
        residual = out - y
        loss = float(np.mean(residual**2))

        grads: List[np.ndarray] = [np.empty(0)] * len(self._params)
        # Output layer.
        delta = (2.0 * residual / len(y))[:, None]  # (n, 1)
        grads[-2] = activations[-1].T @ delta
        grads[-1] = delta.sum(axis=0)
        upstream = delta @ self._params[-2].T  # (n, 9)
        # Hidden layers, last to first.
        for layer in range(HIDDEN_LAYERS - 1, -1, -1):
            act = activations[layer + 1]
            delta_h = upstream * act * (1.0 - act)
            grads[2 * layer] = activations[layer].T @ delta_h
            grads[2 * layer + 1] = delta_h.sum(axis=0)
            upstream = delta_h @ self._params[2 * layer].T

        adam.step += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for i, grad in enumerate(grads):
            adam.m[i] = beta1 * adam.m[i] + (1 - beta1) * grad
            adam.v[i] = beta2 * adam.v[i] + (1 - beta2) * grad * grad
            m_hat = adam.m[i] / (1 - beta1**adam.step)
            v_hat = adam.v[i] / (1 - beta2**adam.step)
            self._params[i] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return loss

    def mse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared prediction error on a held-out set."""
        predictions = self.predict(features)
        return float(np.mean((predictions - np.asarray(targets, dtype=float)) ** 2))

    # ------------------------------------------------------------ persistence

    def save(self, path: Union[str, Path]) -> None:
        """Serialise weights and hyper-parameters to an ``.npz`` file."""
        if self._params is None:
            raise QualityModelError("cannot save an unfitted model")
        meta = json.dumps(
            {
                "learning_rate": self.learning_rate,
                "epochs": self.epochs,
                "batch_size": self.batch_size,
            }
        )
        arrays = {f"param_{i}": p for i, p in enumerate(self._params)}
        np.savez(Path(path), meta=np.frombuffer(meta.encode(), dtype=np.uint8), **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DNNQualityModel":
        """Load a model previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            count = sum(1 for key in data.files if key.startswith("param_"))
            params = [data[f"param_{i}"] for i in range(count)]
        model = cls(
            learning_rate=meta["learning_rate"],
            epochs=meta["epochs"],
            batch_size=meta["batch_size"],
        )
        model._params = params
        return model

    # ------------------------------------------------------------- validation

    @staticmethod
    def _check_features(features: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if x.shape[1] != INPUT_FEATURES:
            raise QualityModelError(
                f"expected {INPUT_FEATURES} features, got {x.shape[1]}"
            )
        return x
