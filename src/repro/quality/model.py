"""Training/evaluation harness for the quality models (Table 1, Fig 1b)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence

import numpy as np

from ..errors import QualityModelError
from ..types import NUM_LAYERS
from ..video.dataset import QualityDataset, generate_dataset
from ..video.synthetic import SyntheticVideo, make_standard_videos
from .dnn import DNNQualityModel
from .linear import LinearRegressionModel
from .svm import SVRModel


class QualityModel(Protocol):
    """The minimal interface all quality models implement."""

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "QualityModel":
        """Train on features/targets."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Estimate quality for a feature matrix."""

    def mse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared error on a held-out set."""


@dataclass
class TrainedQualityModels:
    """The three Table 1 models plus their train/test data and test MSEs."""

    models: Dict[str, QualityModel]
    test_mse: Dict[str, float]
    train: QualityDataset
    test: QualityDataset

    @property
    def dnn(self) -> DNNQualityModel:
        """The DNN model (the one the scheduler uses)."""
        model = self.models["dnn"]
        assert isinstance(model, DNNQualityModel)
        return model

    def per_layer_accuracy(self, layer: int) -> Dict[str, float]:
        """Fig 1(b): mean/min/max DNN estimation accuracy for test samples
        whose highest partially- or fully-received layer is ``layer``.

        Accuracy of one sample is ``1 - |estimated - actual|``.
        """
        fractions = self.test.features[:, :NUM_LAYERS]
        received = fractions > 0.0
        top = np.where(
            received.any(axis=1), NUM_LAYERS - 1 - received[:, ::-1].argmax(axis=1), 0
        )
        mask = top == layer
        if not mask.any():
            return {"mean": float("nan"), "min": float("nan"), "max": float("nan")}
        estimates = self.dnn.predict(self.test.features[mask])
        accuracy = 1.0 - np.abs(estimates - self.test.ssim[mask])
        return {
            "mean": float(accuracy.mean()),
            "min": float(accuracy.min()),
            "max": float(accuracy.max()),
        }


def train_quality_models(
    dataset: Optional[QualityDataset] = None,
    videos: Optional[Sequence[SyntheticVideo]] = None,
    dnn_epochs: int = 500,
    dnn_batch_size: int = 128,
    metric: str = "ssim",
    seed: int = 0,
) -> TrainedQualityModels:
    """Train all three Table 1 models on a 7:3 split of the dataset.

    Args:
        dataset: Pre-generated dataset; generated from ``videos`` (or the
            standard 6-video corpus) when omitted.
        videos: Corpus for dataset generation when ``dataset`` is None.
        dnn_epochs: DNN training epochs (paper: 500; tests use fewer).
        dnn_batch_size: DNN mini-batch size (paper: 128; small datasets
            benefit from a smaller batch so Adam takes more steps).
        metric: ``"ssim"`` (paper default) or ``"psnr"`` — the methodology
            "is general enough to support other video quality metrics, such
            as PSNR" (Sec 2.3).  PSNR targets are trained in a 0-1
            normalised range (dB / 100) so the shared architecture applies.
        seed: Split/initialisation seed.
    """
    if metric not in ("ssim", "psnr"):
        raise QualityModelError(f"metric must be 'ssim' or 'psnr', got {metric!r}")
    if dataset is None:
        dataset = generate_dataset(videos or make_standard_videos(), seed=seed)
    train, test = dataset.split(train_fraction=0.7, seed=seed)
    train_targets = train.ssim if metric == "ssim" else train.psnr / 100.0
    test_targets = test.ssim if metric == "ssim" else test.psnr / 100.0

    models: Dict[str, QualityModel] = {
        "svm": SVRModel(seed=seed),
        "linear_regression": LinearRegressionModel(),
        "dnn": DNNQualityModel(epochs=dnn_epochs, batch_size=dnn_batch_size, seed=seed),
    }
    test_mse: Dict[str, float] = {}
    for name, model in models.items():
        model.fit(train.features, train_targets)
        test_mse[name] = model.mse(test.features, test_targets)
    return TrainedQualityModels(models=models, test_mse=test_mse, train=train, test=test)


def train_default_dnn(
    dataset: Optional[QualityDataset] = None,
    epochs: int = 300,
    seed: int = 0,
) -> DNNQualityModel:
    """Convenience: train only the DNN (what the streaming system needs)."""
    if dataset is None:
        dataset = generate_dataset(make_standard_videos(), seed=seed)
    model = DNNQualityModel(epochs=epochs, seed=seed)
    model.fit(dataset.features, dataset.ssim)
    return model
