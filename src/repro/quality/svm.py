"""Linear epsilon-insensitive support vector regression (Table 1 baseline).

Trained with projected subgradient descent on the primal SVR objective

    1/2 ||w||^2 + C * sum_i max(0, |w.x_i + b - y_i| - epsilon)

With the conventional default ``epsilon = 0.1``, errors smaller than 0.1 are
not penalised at all — which on SSIM targets confined to roughly [0.1, 1.0]
is why the paper measures SVM as the *worst* of the three models
(MSE 0.0524 in Table 1): the epsilon tube is as wide as much of the target
range.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import QualityModelError
from ..types import validate_seed


class SVRModel:
    """Primal linear SVR with epsilon-insensitive loss.

    Args:
        epsilon: Half-width of the insensitive tube (default 0.1, the
            conventional default the paper's comparison implies).
        c: Slack penalty.
        learning_rate: Subgradient step size.
        epochs: Passes over the training set.
        seed: Shuffling seed.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        c: float = 1.0,
        learning_rate: float = 1e-3,
        epochs: int = 200,
        seed: int = 0,
    ) -> None:
        if epsilon < 0:
            raise QualityModelError(f"epsilon must be >= 0, got {epsilon}")
        if c <= 0:
            raise QualityModelError(f"C must be > 0, got {c}")
        self.epsilon = float(epsilon)
        self.c = float(c)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.seed = seed
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SVRModel":
        """Fit by mini-batch projected subgradient descent."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise QualityModelError(
                f"bad shapes: features {features.shape}, targets {targets.shape}"
            )
        rng = validate_seed(self.seed)
        n, d = features.shape
        w = np.zeros(d)
        b = float(np.mean(targets))
        batch = min(64, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                x, y = features[idx], targets[idx]
                residual = x @ w + b - y
                outside = np.abs(residual) > self.epsilon
                sign = np.sign(residual) * outside
                grad_w = w + self.c * (sign @ x) / len(idx)
                grad_b = self.c * float(np.mean(sign))
                w -= self.learning_rate * grad_w
                b -= self.learning_rate * grad_b
        self._weights = w
        self._bias = b
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix or single feature vector."""
        if self._weights is None:
            raise QualityModelError("model is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return features @ self._weights + self._bias

    def mse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared prediction error on a held-out set."""
        predictions = self.predict(features)
        return float(np.mean((predictions - np.asarray(targets, dtype=float)) ** 2))
