"""Command-line interface: run any of the paper's experiments from a shell.

Examples::

    repro-wigig beamforming --users 3 --distance 3 --mas 60 --runs 5
    repro-wigig scheduler --users 6 --range 8 16 --mas 120
    repro-wigig ablation --axis source_coding --users 3
    repro-wigig mobile --users 3 --moving 0 1 --regime low --duration 4
    repro-wigig sweep --variant base --variant rr:scheduler=round_robin
    repro-wigig sweep --variant base --variant rr:scheduler=round_robin \\
        --runs 40 --shards 8 --jobs 4 --checkpoint campaign.jsonl --resume
    repro-wigig sweep --fault-grid blockage_rate_hz --fault-values 0,1,2 \\
        --runs 8 --shards 4 --checkpoint chaos.jsonl
    repro-wigig serve --quick-context --control-port 8700 --receiver-port 8701
    repro-wigig quality-model --epochs 500
    repro-wigig observe --users 3 --frames 6 --trace obs_trace.jsonl
    repro-wigig chaos --users 3 --frames 9 \\
        --fault blockage_rate_hz=2 --fault feedback_loss_rate_hz=1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from . import obs
from .core import MulticastStreamer
from .emulation import (
    ap_fault_grid,
    build_context,
    fault_grid,
    parse_config_overrides,
    run_ablation,
    run_beamforming_comparison,
    run_mobile_comparison,
    run_scheduler_comparison,
    run_variant_sweep,
    variant_from_spec,
)
from .emulation.runner import trace_for_placement
from .emulation.stats import print_table, summarize

#: Named --fault-base bundles for common chaos campaigns.  The
#: ``blockage_failover`` preset is the deep-LoS-blockage base of the
#: 1-AP-vs-2-AP failover curve: long, deep bursts an AP cannot ride out
#: alone, so resilience has to come from the second AP.
FAULT_BASE_PRESETS = {
    "blockage_failover": {
        "faults.seed": "11",
        "faults.blockage_rate_hz": "6",
        "faults.blockage_duration_s": "0.3",
        "faults.blockage_depth_db": "25",
    },
}


def _placement(args) -> tuple:
    if args.range is not None:
        return ("range", args.range[0], args.range[1], args.mas)
    return ("arc", args.distance, args.mas)


def _cmd_beamforming(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_beamforming_comparison(
        ctx, args.users, _placement(args), runs=args.runs, frames=args.frames
    )
    print_table(
        f"Beamforming comparison ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
        header="SSIM box statistics per scheme",
    )
    print_table(
        "PSNR (dB)",
        summarize({k: v["psnr"] for k, v in results.items()}),
    )
    return 0


def _cmd_scheduler(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_scheduler_comparison(
        ctx, args.users, _placement(args), runs=args.runs, frames=args.frames
    )
    print_table(
        f"Scheduler comparison ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
    )
    return 0


def _cmd_ablation(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_ablation(
        ctx, args.axis, args.users, _placement(args),
        runs=args.runs, frames=args.frames,
    )
    print_table(
        f"Ablation: {args.axis} ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
    )
    return 0


def _cmd_mobile(args) -> int:
    ctx = build_context(seed=args.seed)
    series = run_mobile_comparison(
        ctx,
        args.users,
        args.moving,
        args.regime,
        duration_s=args.duration,
        seed=args.seed,
    )
    print(f"\n=== Mobile comparison: regime={args.regime}, {args.users} users ===")
    for approach, values in series.items():
        arr = np.asarray(values)
        print(
            f"{approach:18} mean={arr.mean():.3f} min={arr.min():.3f} "
            f"p10={np.percentile(arr, 10):.3f}"
        )
    return 0


def _cmd_sweep(args) -> int:
    """Ad-hoc variant sweep: any SystemConfig axis straight from the shell.

    ``--shards`` switches to the sharded scheduler: the campaign splits
    into individually-seeded shards executed on a persistent worker pool,
    each appended to the ``--checkpoint`` JSONL as it completes.  A killed
    run restarted with ``--resume`` re-runs only the missing shards and
    merges to a bit-identical result.

    ``--fault-grid AXIS --fault-values V,V,...`` appends one chaos arm per
    value of a :class:`repro.faults.FaultConfig` knob; fault campaigns go
    through the same sharded scheduler as any other variant set (their
    overrides canonicalize into the checkpoint's campaign hash).

    ``--ap-grid 1,2`` crosses the fault grid with AP counts — the
    blockage-failover comparison (arXiv:1711.06154's multi-link resilience)
    in one command::

        repro-wigig sweep --fault-grid blockage_rate_hz \\
            --fault-values 0,1,2,4 --fault-base preset:blockage_failover \\
            --ap-grid 1,2
    """
    from .emulation import run_sharded_sweep, write_results_json
    from .emulation.shard import CampaignSpec

    if args.shards is not None and args.checkpoint is None:
        print("--shards requires --checkpoint PATH")
        return 2
    if args.resume and args.shards is None:
        print("--resume requires --shards")
        return 2
    variants = [variant_from_spec(spec) for spec in args.variant]
    if args.fault_grid is not None:
        if not args.fault_values:
            print("--fault-grid requires --fault-values V[,V,...]")
            return 2
        base = {}
        for item in args.fault_base:
            if item.startswith("preset:"):
                preset = item[len("preset:"):].strip()
                if preset not in FAULT_BASE_PRESETS:
                    print(
                        f"unknown --fault-base preset {preset!r} "
                        f"(known: {', '.join(sorted(FAULT_BASE_PRESETS))})"
                    )
                    return 2
                base.update(FAULT_BASE_PRESETS[preset])
                continue
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                print(f"bad --fault-base {item!r} (expected field=value)")
                return 2
            key = key.strip()
            if "." not in key:
                key = f"faults.{key}"
            base[key] = value.strip()
        values = [v.strip() for v in args.fault_values.split(",") if v.strip()]
        if args.ap_grid is not None:
            ap_counts = [
                int(v) for v in args.ap_grid.split(",") if v.strip()
            ]
            variants.extend(
                ap_fault_grid(args.fault_grid, values, ap_counts, base)
            )
        else:
            variants.extend(fault_grid(args.fault_grid, values, base))
    elif args.fault_values or args.fault_base or args.ap_grid:
        print("--fault-values/--fault-base/--ap-grid require --fault-grid AXIS")
        return 2
    if not variants:
        print("need at least one arm: --variant and/or --fault-grid")
        return 2
    if args.quick_context:
        ctx = build_context(
            height=144, width=256, dnn_epochs=60, probe_frames=2,
            seed=args.seed,
        )
    else:
        ctx = build_context(seed=args.seed)
    spec = None
    if args.shards is not None:
        spec = CampaignSpec(
            variants=tuple(variants),
            num_users=args.users,
            placement=_placement(args),
            runs=args.runs,
            frames=args.frames,
            shards=args.shards,
        )
        results = run_sharded_sweep(
            ctx, variants, args.users, _placement(args),
            runs=args.runs, frames=args.frames,
            shards=args.shards, checkpoint=args.checkpoint,
            resume=args.resume, jobs=args.jobs,
            task_timeout_s=args.task_timeout,
        )
    else:
        results = run_variant_sweep(
            ctx, variants, args.users, _placement(args),
            runs=args.runs, frames=args.frames, jobs=args.jobs,
        )
    if args.result_json is not None:
        path = write_results_json(args.result_json, results, spec)
        print(f"results written     : {path}")
    print_table(
        f"Variant sweep ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
        header="SSIM box statistics per variant",
    )
    print_table(
        "PSNR (dB)",
        summarize({k: v["psnr"] for k, v in results.items()}),
    )
    return 0


def _cmd_observe(args) -> int:
    """Run an instrumented scenario and print/save the observability report.

    Everything runs serially in this process (``jobs=1``) so the trace is
    complete — the observability registry is per-process and worker-pool
    telemetry is not merged back.
    """
    obs.OBS.reset()
    obs.configure(mode=args.mode, trace_path=str(args.trace))
    # Build the context *after* enabling observability: reference probes are
    # (re-)encoded here, so the encode.jigsaw stage lands in the trace.  Only
    # the trained DNN is disk-cached, and that is not an instrumented stage.
    ctx = build_context(seed=args.seed)
    placement = _placement(args)
    for run in range(args.runs):
        run_seed = 9000 + 31 * run
        trace = trace_for_placement(ctx, args.users, placement, run_seed)
        with obs.OBS.span("emulation.run", run=run, frames=args.frames) as span:
            streamer = MulticastStreamer(
                ctx.config(),
                ctx.dnn,
                ctx.probes,
                ctx.scenario.channel_model,
                seed=run_seed + 7,
            )
            outcome = streamer.stream_trace(trace, num_frames=args.frames)
            span.set(mean_ssim=outcome.mean_ssim)

    report = obs.build_report(obs.OBS)
    print(obs.format_report(report))
    if obs.OBS.mode >= obs.TRACE:
        path = obs.OBS.trace.flush()
        print(f"trace written      : {path}")
    if args.report is not None:
        path = obs.write_report(report, args.report)
        print(f"report written     : {path}")
    missing = [
        stage
        for stage in obs.PIPELINE_STAGES
        if stage not in report["stages"]
    ]
    if missing:
        print(f"WARNING: stages without samples: {missing}")
    return 0


def _outcome_fingerprint(outcome) -> str:
    """A bit-exact, order-independent digest of a session's OutcomeStats."""
    return outcome.fingerprint()


def _cmd_chaos(args) -> int:
    """Stream one seeded fault schedule, twice, and check determinism.

    Runs with counters-mode observability so the ``fault.*`` counters the
    injectors emit are printed, and replays the identical (seed, schedule,
    trace) ``--repeat`` times: any divergence in the per-frame/per-user
    OutcomeStats across repeats is a reproducibility bug and exits nonzero.
    """
    from .faults import FaultController

    pairs = {}
    for item in args.fault:
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            print(f"bad --fault {item!r} (expected field=value)")
            return 2
        pairs[f"faults.{key.strip()}"] = value.strip()
    pairs.setdefault("faults.seed", str(args.seed))
    overrides = parse_config_overrides(pairs)

    ctx = build_context(seed=args.seed)
    config = ctx.config(**overrides)
    trace = trace_for_placement(ctx, args.users, _placement(args), args.seed + 11)
    controller = FaultController.from_config(
        config.faults, args.frames / config.fps, trace.user_ids()
    )
    print(f"\n=== Chaos run: {args.users} users, {args.frames} frames, "
          f"seed={config.faults.seed} ===")
    print("schedule:", controller.schedule.summary() or "(no events drawn)")

    fingerprints = []
    counters = {}
    for repeat in range(args.repeat):
        with obs.observed("counters"):
            streamer = MulticastStreamer(
                config,
                ctx.dnn,
                ctx.probes,
                ctx.scenario.channel_model,
                seed=args.seed + 7,
            )
            # The session draws a fresh controller from config.faults each
            # repeat: same seed, same schedule.
            outcome = streamer.stream_trace(trace, num_frames=args.frames)
            counters = obs.OBS.counters()
        fingerprints.append(_outcome_fingerprint(outcome))
        print(f"run {repeat}: mean SSIM={outcome.mean_ssim:.4f} "
              f"mean PSNR={outcome.mean_psnr_db:.2f} dB "
              f"({len(outcome.stats)} frame/user stats)")

    fault_counters = {
        name: value for name, value in sorted(counters.items())
        if name.startswith("fault.")
    }
    print("\nfault.* counters (last run):")
    if fault_counters:
        for name, value in fault_counters.items():
            print(f"  {name:40} {value:.0f}")
    else:
        print("  (none fired)")

    deterministic = all(fp == fingerprints[0] for fp in fingerprints[1:])
    print(f"\ndeterministic across {args.repeat} same-seed runs: "
          f"{'yes' if deterministic else 'NO — OutcomeStats diverged'}")
    return 0 if deterministic else 1


def _cmd_serve(args) -> int:
    """Run the asyncio multicast service until SIGTERM/SIGINT.

    Sessions are created at runtime through ``POST /start`` on the
    control plane; receivers join over the length-prefixed JSON protocol.
    Both termination signals trigger the graceful drain path: receivers
    get ``bye`` plus a grace window for in-flight feedback, broadcasters
    stop at their next frame boundary, and every JSONL trace recorder is
    flushed before the process exits.
    """
    import asyncio
    import signal

    from .service import ServiceServer

    if args.obs != "off":
        obs.configure(mode=args.obs, trace_path=str(args.trace))
    if args.quick_context:
        ctx = build_context(
            height=144, width=256, dnn_epochs=60, probe_frames=2,
            seed=args.seed,
        )
    else:
        ctx = build_context(seed=args.seed)

    def _log(line: str) -> None:
        # Unbuffered: supervisors (and the smoke test) parse these lines
        # to discover the ephemeral ports before the first request.
        print(line, flush=True)

    async def _serve() -> None:
        server = ServiceServer(
            ctx,
            host=args.host,
            receiver_port=args.receiver_port,
            control_port=args.control_port,
            frame_interval_s=args.frame_interval,
            drain_s=args.drain,
            log=_log,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await server.serve_until(stop)

    asyncio.run(_serve())
    return 0


def _cmd_quality_model(args) -> int:
    from .quality import train_quality_models

    trained = train_quality_models(dnn_epochs=args.epochs, seed=args.seed)
    print("\n=== Quality model test MSE (Table 1) ===")
    for name, mse in trained.test_mse.items():
        print(f"{name:20} {mse:.3e}")
    print("\nPer-layer DNN accuracy (Fig 1b):")
    for layer in range(4):
        acc = trained.per_layer_accuracy(layer)
        print(
            f"layer {layer}: mean={acc['mean']:.3f} "
            f"min={acc['min']:.3f} max={acc['max']:.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-wigig",
        description="Reproduction experiments for the WiGig 4K multicast paper.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--users", type=int, default=3)
        p.add_argument("--distance", type=float, default=3.0)
        p.add_argument("--range", type=float, nargs=2, default=None,
                       metavar=("MIN", "MAX"))
        p.add_argument("--mas", type=float, default=60.0,
                       help="maximum angular spacing, degrees")
        p.add_argument("--runs", type=int, default=3)
        p.add_argument("--frames", type=int, default=9)

    p = sub.add_parser("beamforming", help="compare the four beamforming schemes")
    common(p)
    p.set_defaults(func=_cmd_beamforming)

    p = sub.add_parser("scheduler", help="optimized scheduler vs round robin")
    common(p)
    p.set_defaults(func=_cmd_scheduler)

    p = sub.add_parser("ablation", help="source-coding / rate-control on-off")
    common(p)
    p.add_argument("--axis", choices=["source_coding", "rate_control"],
                   default="source_coding")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("mobile", help="trace-driven mobile comparison")
    p.add_argument("--users", type=int, default=1)
    p.add_argument("--moving", type=int, nargs="*", default=[0])
    p.add_argument("--regime", choices=["high", "low", "env"], default="high")
    p.add_argument("--duration", type=float, default=3.0)
    p.set_defaults(func=_cmd_mobile)

    p = sub.add_parser(
        "sweep",
        help="ad-hoc variant sweep over any SystemConfig fields",
    )
    common(p)
    p.add_argument(
        "--variant", action="append", default=[],
        metavar="NAME[:FIELD=VALUE,...]",
        help="one comparison arm, e.g. rr:scheduler=round_robin "
             "(repeat for more arms)",
    )
    p.add_argument(
        "--fault-grid", default=None, metavar="AXIS",
        help="sweep one FaultConfig knob (e.g. blockage_rate_hz); adds "
             "one arm per --fault-values entry",
    )
    p.add_argument(
        "--fault-values", default=None, metavar="V[,V,...]",
        help="comma-separated grid points for --fault-grid",
    )
    p.add_argument(
        "--fault-base", action="append", default=[],
        metavar="FIELD=VALUE|preset:NAME",
        help="FaultConfig override shared by every --fault-grid arm "
             "(repeat for more); preset:blockage_failover expands to the "
             "deep-LoS-blockage base used by the multi-AP failover curve",
    )
    p.add_argument(
        "--ap-grid", default=None, metavar="N[,N,...]",
        help="cross --fault-grid with these AP counts (e.g. 1,2): one "
             "<n>ap:<axis>=<value> arm per combination, all sharing one "
             "superset trace per placement",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the campaign into N checkpointable shards on a "
             "persistent worker pool (requires --checkpoint)",
    )
    p.add_argument(
        "--checkpoint", type=Path, default=None, metavar="PATH",
        help="JSONL checkpoint the sharded campaign appends to",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="load finished shards from --checkpoint and run only the rest",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-shard deadline before a worker counts as hung "
             "(default: 600)",
    )
    p.add_argument(
        "--result-json", type=Path, default=None, metavar="PATH",
        help="dump merged results as hex-float JSON for bit-exact diffing",
    )
    p.add_argument(
        "--quick-context", action="store_true",
        help="small low-res experiment context (CI-sized campaigns)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "observe",
        help="run an instrumented scenario and emit the observability report",
    )
    common(p)
    p.add_argument(
        "--mode", choices=["counters", "trace"], default="trace",
        help="observability level (default: trace)",
    )
    p.add_argument(
        "--trace", type=Path, default=Path("repro_obs_trace.jsonl"),
        help="JSONL trace destination (trace mode only)",
    )
    p.add_argument(
        "--report", type=Path, default=None,
        help="also save the aggregate report as JSON",
    )
    p.set_defaults(func=_cmd_observe, runs=1, frames=6)

    p = sub.add_parser(
        "chaos",
        help="stream a seeded fault schedule and verify determinism",
    )
    common(p)
    p.add_argument(
        "--fault", action="append", default=[],
        metavar="FIELD=VALUE",
        help="one FaultConfig knob, e.g. blockage_rate_hz=2 "
             "(repeat for more; seed defaults to --seed)",
    )
    p.add_argument(
        "--repeat", type=int, default=2,
        help="same-seed replays to compare (default: 2)",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run the asyncio multicast service (REST control plane + "
             "receiver protocol)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--receiver-port", type=int, default=0,
        help="receiver-protocol TCP port (default: ephemeral)",
    )
    p.add_argument(
        "--control-port", type=int, default=0,
        help="REST control-plane port (default: ephemeral)",
    )
    p.add_argument(
        "--frame-interval", type=float, default=0.0, metavar="SECONDS",
        help="wall-clock pacing between frames (0 = as fast as possible)",
    )
    p.add_argument(
        "--drain", type=float, default=0.25, metavar="SECONDS",
        help="shutdown grace window for in-flight receiver messages",
    )
    p.add_argument(
        "--obs", choices=["off", "counters", "trace"], default="counters",
        help="observability mode for the server process (default: counters)",
    )
    p.add_argument(
        "--trace", type=Path, default=Path("repro_obs_trace.jsonl"),
        help="server-wide JSONL trace destination (--obs trace only)",
    )
    p.add_argument(
        "--quick-context", action="store_true",
        help="small low-res experiment context (CI-sized sessions)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("quality-model", help="train and evaluate Table 1 models")
    p.add_argument("--epochs", type=int, default=300)
    p.set_defaults(func=_cmd_quality_model)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
