"""Command-line interface: run any of the paper's experiments from a shell.

Examples::

    repro-wigig beamforming --users 3 --distance 3 --mas 60 --runs 5
    repro-wigig scheduler --users 6 --range 8 16 --mas 120
    repro-wigig ablation --axis source_coding --users 3
    repro-wigig mobile --users 3 --moving 0 1 --regime low --duration 4
    repro-wigig quality-model --epochs 500
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .emulation import (
    BoxStats,
    build_context,
    run_ablation,
    run_beamforming_comparison,
    run_mobile_comparison,
    run_scheduler_comparison,
)
from .emulation.stats import print_table, summarize


def _placement(args) -> tuple:
    if args.range is not None:
        return ("range", args.range[0], args.range[1], args.mas)
    return ("arc", args.distance, args.mas)


def _cmd_beamforming(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_beamforming_comparison(
        ctx, args.users, _placement(args), runs=args.runs, frames=args.frames
    )
    print_table(
        f"Beamforming comparison ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
        header="SSIM box statistics per scheme",
    )
    print_table(
        "PSNR (dB)",
        summarize({k: v["psnr"] for k, v in results.items()}),
    )
    return 0


def _cmd_scheduler(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_scheduler_comparison(
        ctx, args.users, _placement(args), runs=args.runs, frames=args.frames
    )
    print_table(
        f"Scheduler comparison ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
    )
    return 0


def _cmd_ablation(args) -> int:
    ctx = build_context(seed=args.seed)
    results = run_ablation(
        ctx, args.axis, args.users, _placement(args),
        runs=args.runs, frames=args.frames,
    )
    print_table(
        f"Ablation: {args.axis} ({args.users} users)",
        summarize({k: v["ssim"] for k, v in results.items()}),
    )
    return 0


def _cmd_mobile(args) -> int:
    ctx = build_context(seed=args.seed)
    series = run_mobile_comparison(
        ctx,
        args.users,
        args.moving,
        args.regime,
        duration_s=args.duration,
        seed=args.seed,
    )
    print(f"\n=== Mobile comparison: regime={args.regime}, {args.users} users ===")
    for approach, values in series.items():
        arr = np.asarray(values)
        print(
            f"{approach:18} mean={arr.mean():.3f} min={arr.min():.3f} "
            f"p10={np.percentile(arr, 10):.3f}"
        )
    return 0


def _cmd_quality_model(args) -> int:
    from .quality import train_quality_models

    trained = train_quality_models(dnn_epochs=args.epochs, seed=args.seed)
    print("\n=== Quality model test MSE (Table 1) ===")
    for name, mse in trained.test_mse.items():
        print(f"{name:20} {mse:.3e}")
    print("\nPer-layer DNN accuracy (Fig 1b):")
    for layer in range(4):
        acc = trained.per_layer_accuracy(layer)
        print(
            f"layer {layer}: mean={acc['mean']:.3f} "
            f"min={acc['min']:.3f} max={acc['max']:.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-wigig",
        description="Reproduction experiments for the WiGig 4K multicast paper.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--users", type=int, default=3)
        p.add_argument("--distance", type=float, default=3.0)
        p.add_argument("--range", type=float, nargs=2, default=None,
                       metavar=("MIN", "MAX"))
        p.add_argument("--mas", type=float, default=60.0,
                       help="maximum angular spacing, degrees")
        p.add_argument("--runs", type=int, default=3)
        p.add_argument("--frames", type=int, default=9)

    p = sub.add_parser("beamforming", help="compare the four beamforming schemes")
    common(p)
    p.set_defaults(func=_cmd_beamforming)

    p = sub.add_parser("scheduler", help="optimized scheduler vs round robin")
    common(p)
    p.set_defaults(func=_cmd_scheduler)

    p = sub.add_parser("ablation", help="source-coding / rate-control on-off")
    common(p)
    p.add_argument("--axis", choices=["source_coding", "rate_control"],
                   default="source_coding")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("mobile", help="trace-driven mobile comparison")
    p.add_argument("--users", type=int, default=1)
    p.add_argument("--moving", type=int, nargs="*", default=[0])
    p.add_argument("--regime", choices=["high", "low", "env"], default="high")
    p.add_argument("--duration", type=float, default=3.0)
    p.set_defaults(func=_cmd_mobile)

    p = sub.add_parser("quality-model", help="train and evaluate Table 1 models")
    p.add_argument("--epochs", type=int, default=300)
    p.set_defaults(func=_cmd_quality_model)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
