"""Candidate multicast-group enumeration (Sec 2.4).

"For N clients, we enumerate all possible user groups ... We omit the groups
whose throughput is below a threshold to speed up computation."

We enumerate every non-empty subset up to ``exhaustive_max_users`` clients.
Beyond that, exhaustive enumeration (2^N - 1 beams per beacon) is too slow
even for the paper's few-millisecond budget, so we restrict to subsets that
are *contiguous in azimuth*: a single phased-array beam pattern covers an
angular sector, so the only groups a beam can serve efficiently are angular
neighbours.  Singleton groups are always included, guaranteeing every user
remains reachable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..beamforming.selection import BeamPlan, GroupBeamPlanner
from ..errors import SchedulingError
from ..phy.channel import ChannelState


@dataclass(frozen=True)
class CandidateGroup:
    """One candidate multicast group with its beam plan.

    Attributes:
        index: Stable index within this enumeration (used by the packet
            scheduler's "increasing order of group id" greedy).
        plan: Beam, per-user RSS, MCS, and rate.
        rate_scale: Divisor applied to the MCS rate.  The paper streams true
            4K; emulation at reduced resolution divides link rates by the
            pixel ratio (e.g. 4K/512x288 = 56.25) so the data-to-rate regime
            — and therefore every scheduling/beamforming trade-off — matches
            the 4K system while frames stay cheap to decode.
    """

    index: int
    plan: BeamPlan
    rate_scale: float = 1.0

    @property
    def user_ids(self) -> Tuple[int, ...]:
        """Members of the group."""
        return self.plan.user_ids

    @property
    def rate_mbps(self) -> float:
        """Group UDP goodput (bottleneck user's MCS), after scaling."""
        return self.plan.rate_mbps / self.rate_scale

    @property
    def rate_bytes_per_s(self) -> float:
        """Group goodput in bytes per second, after scaling."""
        return self.rate_mbps * 1e6 / 8.0


class GroupEnumerator:
    """Enumerates and prunes candidate groups for one channel snapshot.

    Args:
        planner: Scheme-aware beam/rate planner.
        min_rate_mbps: Throughput threshold below which groups are dropped
            (the paper's pruning).  Singletons are kept even below the
            threshold so no user is ever orphaned.
        exhaustive_max_users: Enumerate all subsets up to this many clients;
            above it, only azimuth-contiguous subsets.
        max_group_size: Optional cap on group membership.  ``None`` keeps
            the unbounded enumeration; a cap bounds the azimuth-window
            candidate count to O(N x cap), which is what keeps planning
            linear for thousand-receiver cohort runs.
    """

    def __init__(
        self,
        planner: GroupBeamPlanner,
        min_rate_mbps: float = 200.0,
        exhaustive_max_users: int = 4,
        rate_scale: float = 1.0,
        max_group_size: Optional[int] = None,
    ) -> None:
        if min_rate_mbps < 0:
            raise SchedulingError(f"min_rate_mbps must be >= 0, got {min_rate_mbps}")
        if rate_scale <= 0:
            raise SchedulingError(f"rate_scale must be positive, got {rate_scale}")
        if max_group_size is not None and max_group_size < 2:
            raise SchedulingError(
                f"max_group_size must be at least 2, got {max_group_size}"
            )
        self.planner = planner
        self.min_rate_mbps = float(min_rate_mbps)
        self.exhaustive_max_users = int(exhaustive_max_users)
        self.rate_scale = float(rate_scale)
        self.max_group_size = max_group_size

    def enumerate(
        self, state: ChannelState, user_ids: Sequence[int]
    ) -> List[CandidateGroup]:
        """All kept candidate groups, singletons first then by size."""
        users = sorted(user_ids)
        if not users:
            raise SchedulingError("need at least one user")
        subsets: List[Tuple[int, ...]] = [(u,) for u in users]
        if self.planner.allows_multiuser_groups and len(users) > 1:
            subsets.extend(self._multiuser_subsets(state, users))

        groups: List[CandidateGroup] = []
        for subset in subsets:
            plan = self.planner.plan_group(state, subset)
            if plan.rate_mbps <= 0.0:
                continue
            if len(subset) > 1 and plan.rate_mbps < self.min_rate_mbps:
                continue
            groups.append(
                CandidateGroup(
                    index=len(groups), plan=plan, rate_scale=self.rate_scale
                )
            )
        if not groups:
            # Degenerate snapshot (all users below every data MCS): keep the
            # least-bad singleton so upper layers can degrade gracefully.
            best_user = max(
                users, key=lambda u: self.planner.plan_group(state, [u]).min_rss_dbm
            )
            groups.append(
                CandidateGroup(
                    index=0,
                    plan=self.planner.plan_group(state, [best_user]),
                    rate_scale=self.rate_scale,
                )
            )
        return groups

    def _multiuser_subsets(
        self, state: ChannelState, users: List[int]
    ) -> List[Tuple[int, ...]]:
        cap = self.max_group_size or len(users)
        if len(users) <= self.exhaustive_max_users:
            subsets = []
            for size in range(2, min(len(users), cap) + 1):
                subsets.extend(itertools.combinations(users, size))
            return subsets
        ordered = self._sort_by_azimuth(state, users)
        subsets = []
        for start in range(len(ordered)):
            stop = min(len(ordered), start + cap)
            for end in range(start + 2, stop + 1):
                subsets.append(tuple(sorted(ordered[start:end])))
        return sorted(set(subsets), key=lambda s: (len(s), s))

    def _sort_by_azimuth(self, state: ChannelState, users: List[int]) -> List[int]:
        """Order users by the pointing angle of their best codebook sector."""
        codebook = self.planner.codebook
        angles = {}
        for user in users:
            gains = codebook.gains(state.channels[user])
            angles[user] = codebook.beam_angle_rad(int(np.argmax(gains)))
        return sorted(users, key=lambda u: angles[u])
