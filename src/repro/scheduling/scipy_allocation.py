"""Alternative Problem-1 solver using scipy's SLSQP.

The paper notes "the optimization stage only takes a few milliseconds with
multi-core computation"; the default :class:`TimeAllocationOptimizer` uses a
projected-gradient method tuned for this problem.  This module provides an
independent SLSQP-based solver over the same objective for cross-validation
(tests assert both solvers land on comparable objective values) and for
users who prefer a library optimizer.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
from scipy.optimize import minimize

from ..errors import SchedulingError
from ..quality.curves import FrameFeatureContext
from ..quality.dnn import DNNQualityModel
from ..types import FRAME_BUDGET_30FPS, NUM_LAYERS
from .allocation import AllocationResult
from .groups import CandidateGroup


class ScipyAllocationOptimizer:
    """SLSQP solver for the Sec 2.4 time-allocation problem.

    Args:
        quality_model: Trained DNN Q(.).
        traffic_penalty_per_byte: The paper's lambda tie-breaker.
        max_iterations: SLSQP iteration cap.
    """

    def __init__(
        self,
        quality_model: DNNQualityModel,
        traffic_penalty_per_byte: float = 1e-9,
        max_iterations: int = 120,
    ) -> None:
        if traffic_penalty_per_byte < 0:
            raise SchedulingError("lambda must be >= 0")
        self.quality_model = quality_model
        self.traffic_penalty_per_byte = float(traffic_penalty_per_byte)
        self.max_iterations = int(max_iterations)

    def optimize(
        self,
        groups: Sequence[CandidateGroup],
        contexts: Dict[int, FrameFeatureContext],
        frame_budget_s: float = FRAME_BUDGET_30FPS,
    ) -> AllocationResult:
        """Solve Problem 1 with SLSQP (analytic objective gradient)."""
        if not groups:
            raise SchedulingError("no candidate groups")
        users = sorted(contexts)
        if not users:
            raise SchedulingError("no user contexts")
        num_groups = len(groups)
        rates = np.array([g.rate_bytes_per_s for g in groups])
        membership = np.zeros((len(users), num_groups), dtype=bool)
        for gi, group in enumerate(groups):
            for user in group.user_ids:
                if user in contexts:
                    membership[users.index(user), gi] = True
        layer_sizes = np.vstack(
            [np.asarray(contexts[u].layer_sizes, dtype=float) for u in users]
        )

        def unpack(x: np.ndarray) -> np.ndarray:
            return x.reshape(num_groups, NUM_LAYERS)

        def objective_and_grad(x: np.ndarray):
            time = unpack(x)
            bytes_alloc = time * rates[:, None]
            user_bytes = membership.astype(float) @ bytes_alloc
            features = np.vstack(
                [
                    contexts[u].features_for_bytes(user_bytes[k])
                    for k, u in enumerate(users)
                ]
            )
            predictions, input_grad = self.quality_model.predict_with_input_grad(
                features
            )
            value = float(
                predictions.sum()
                - self.traffic_penalty_per_byte * user_bytes.sum()
            )
            fractions = user_bytes / layer_sizes
            active = fractions < 1.0
            dq_dbytes = (
                input_grad[:, :NUM_LAYERS] * active / layer_sizes
                - self.traffic_penalty_per_byte
            )
            grad_time = (membership.T.astype(float) @ dq_dbytes) * rates[:, None]
            return -value, -grad_time.ravel()

        start = np.zeros(num_groups * NUM_LAYERS)
        # Feasible warm start: spend the budget on the widest-coverage group.
        best_group = int(np.argmax(membership.sum(axis=0) * rates))
        start_matrix = unpack(start.copy())
        start_matrix[best_group] = frame_budget_s * np.array([0.4, 0.3, 0.2, 0.1])
        start = start_matrix.ravel()

        result = minimize(
            objective_and_grad,
            start,
            jac=True,
            method="SLSQP",
            bounds=[(0.0, frame_budget_s)] * start.size,
            constraints=[
                {
                    "type": "ineq",
                    "fun": lambda x: frame_budget_s - x.sum(),
                    "jac": lambda x: -np.ones_like(x),
                }
            ],
            options={"maxiter": self.max_iterations, "ftol": 1e-9},
        )
        time = np.clip(unpack(result.x), 0.0, None)
        overshoot = time.sum()
        if overshoot > frame_budget_s:
            time *= frame_budget_s / overshoot

        bytes_alloc = time * rates[:, None]
        per_user = {
            u: (membership[k][:, None] * bytes_alloc).sum(axis=0)
            for k, u in enumerate(users)
        }
        predicted = {
            u: float(
                self.quality_model.predict(
                    contexts[u].features_for_bytes(per_user[u])
                )[0]
            )
            for u in users
        }
        return AllocationResult(
            groups=list(groups),
            time_s=time,
            bytes_allocated=bytes_alloc,
            per_user_bytes=per_user,
            predicted_quality=predicted,
        )
