"""Problem 4: mapping layer allocations onto coding units (Sec 2.6).

The time-allocation optimizer emits byte budgets ``S(G, j)`` per multicast
group and layer; fountain coding works per *coding unit* (sublayer), and a
unit only yields information once a receiver accumulates the whole unit.
Problem 4 asks for the per-unit split ``sss(G, i, j)`` maximising the total
decoded traffic.

We use the paper's greedy: walk coding units in increasing order; within a
unit, walk multicast groups in increasing group id, assigning just enough of
each group's remaining budget that every receiver of the group completes the
unit (receivers aggregate symbols across all their groups, so a unit's
deficit for a group is the *maximum* deficit over its members).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SchedulingError
from ..types import NUM_LAYERS
from ..video.jigsaw import SUBLAYER_COUNTS
from .groups import CandidateGroup


@dataclass(frozen=True)
class UnitAssignment:
    """Bytes of one coding unit assigned to one multicast group.

    Attributes:
        group_index: Index into the candidate-group list.
        layer: Video layer of the unit.
        sublayer: Sublayer index within the layer.
        nbytes: Coded bytes to send for this unit in this group.
    """

    group_index: int
    layer: int
    sublayer: int
    nbytes: float


def assign_coding_groups(
    bytes_allocated: np.ndarray,
    groups: Sequence[CandidateGroup],
    unit_nbytes: float,
) -> List[UnitAssignment]:
    """Greedy solution of Problem 4.

    Args:
        bytes_allocated: ``(num_groups, 4)`` byte budgets ``S(G, j)`` from
            the allocation optimizer.
        groups: The candidate groups (for membership).
        unit_nbytes: Source bytes of one coding unit (``size(i, j)``; equal
            for all units in the Jigsaw layering).

    Returns:
        Assignments in transmission order: layer-major, then sublayer, then
        group id — lower layers ship first, which is also what the
        leaky-bucket priority wants (Sec 2.7).
    """
    budgets = np.array(bytes_allocated, dtype=float)
    if budgets.shape != (len(groups), NUM_LAYERS):
        raise SchedulingError(
            f"bytes_allocated must be ({len(groups)}, {NUM_LAYERS}), "
            f"got {budgets.shape}"
        )
    if unit_nbytes <= 0:
        raise SchedulingError(f"unit_nbytes must be positive, got {unit_nbytes}")

    all_users = sorted({u for g in groups for u in g.user_ids})
    assignments: List[UnitAssignment] = []
    for layer in range(NUM_LAYERS):
        # received[u] = bytes of the current unit user u can decode so far.
        for sublayer in range(SUBLAYER_COUNTS[layer]):
            received: Dict[int, float] = {u: 0.0 for u in all_users}
            for gi, group in enumerate(groups):
                budget = budgets[gi, layer]
                if budget <= 1e-9:
                    continue
                deficit = max(
                    (unit_nbytes - received[u] for u in group.user_ids), default=0.0
                )
                if deficit <= 1e-9:
                    continue
                granted = min(budget, deficit)
                budgets[gi, layer] -= granted
                for u in group.user_ids:
                    received[u] = min(unit_nbytes, received[u] + granted)
                assignments.append(
                    UnitAssignment(
                        group_index=gi,
                        layer=layer,
                        sublayer=sublayer,
                        nbytes=granted,
                    )
                )
    # Any leftover budget means the allocation exceeded the layer's useful
    # content for those groups; spend it on the next incomplete units
    # (defensive — the optimizer's saturation usually prevents this).
    return assignments


def decoded_bytes_per_user(
    assignments: Sequence[UnitAssignment],
    groups: Sequence[CandidateGroup],
    unit_nbytes: float,
) -> Dict[int, np.ndarray]:
    """Ideal (loss-free) decodable bytes per user per layer.

    A unit counts for a user only when the user's aggregated assignment
    reaches the full unit size — the fountain-code threshold behaviour of
    Problem 4's second constraint.
    """
    all_users = sorted({u for g in groups for u in g.user_ids})
    progress: Dict[Tuple[int, int, int], Dict[int, float]] = {}
    for assignment in assignments:
        key = (assignment.layer, assignment.sublayer, 0)
        unit_progress = progress.setdefault(key, {u: 0.0 for u in all_users})
        for u in groups[assignment.group_index].user_ids:
            unit_progress[u] += assignment.nbytes
    totals = {u: np.zeros(NUM_LAYERS) for u in all_users}
    for (layer, _sub, _), unit_progress in progress.items():
        for u, got in unit_progress.items():
            if got >= unit_nbytes - 1e-6:
                totals[u][layer] += unit_nbytes
    return totals
