"""Transmission-strategy optimization (paper Sec 2.4, 2.6).

Turns channel state into a per-frame transmission plan:

1. enumerate candidate multicast groups and their beamformed rates
   (:mod:`repro.scheduling.groups`),
2. optimize time allocation across groups and layers against the DNN quality
   model — Problem 1 (:mod:`repro.scheduling.allocation`),
3. map byte budgets onto fountain coding units with the greedy of Problem 4
   (:mod:`repro.scheduling.coding_groups`).

The round-robin baseline of Sec 4.2.2 lives in
:mod:`repro.scheduling.round_robin`.
"""

from .groups import CandidateGroup, GroupEnumerator
from .allocation import AllocationResult, TimeAllocationOptimizer
from .scipy_allocation import ScipyAllocationOptimizer
from .coding_groups import UnitAssignment, assign_coding_groups
from .round_robin import round_robin_allocation

__all__ = [
    "CandidateGroup",
    "GroupEnumerator",
    "AllocationResult",
    "TimeAllocationOptimizer",
    "ScipyAllocationOptimizer",
    "UnitAssignment",
    "assign_coding_groups",
    "round_robin_allocation",
]
