"""Problem 1: time allocation across multicast groups and layers (Sec 2.4).

    max_{T_{G,j}}  sum_i Q(D_i1..D_i4) - lambda * sum_{i,j} D_ij
    s.t.           D_ij = sum_{G : i in G} T_{G,j} * R_G
                   sum_{G,j} T_{G,j} <= 1 / FR,   T >= 0

``Q`` is the trained DNN quality model; its hand-coded input gradient gives
the exact marginal quality per byte at each layer, so we solve the problem
with projected gradient ascent on the capped simplex
``{T >= 0, sum T <= budget}``.  The ``lambda`` term breaks ties toward less
traffic, exactly as in the paper; additionally the quality model's fraction
features saturate at 1, so allocating beyond a layer's size earns zero
quality — redundancy is penalised automatically ("optimizing our objective
will automatically minimize redundancy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import SchedulingError
from ..obs import OBS
from ..quality.curves import FrameFeatureContext
from ..quality.dnn import DNNQualityModel
from ..types import FRAME_BUDGET_30FPS, NUM_LAYERS
from .groups import CandidateGroup


@dataclass
class AllocationResult:
    """Solution of Problem 1 for one frame.

    Attributes:
        groups: The candidate groups the solution indexes into.
        time_s: ``(num_groups, 4)`` seconds allocated per group and layer.
        bytes_allocated: ``time_s * R_G`` per group and layer.
        per_user_bytes: Expected bytes each user receives per layer.
        predicted_quality: DNN-estimated SSIM per user under this allocation.
    """

    groups: List[CandidateGroup]
    time_s: np.ndarray
    bytes_allocated: np.ndarray
    per_user_bytes: Dict[int, np.ndarray]
    predicted_quality: Dict[int, float]

    @property
    def total_time_s(self) -> float:
        """Total airtime consumed."""
        return float(self.time_s.sum())

    def nonzero_entries(self) -> List[tuple]:
        """(group_index, layer, seconds) for all non-trivial allocations."""
        entries = []
        for g in range(self.time_s.shape[0]):
            for j in range(NUM_LAYERS):
                if self.time_s[g, j] > 1e-9:
                    entries.append((g, j, float(self.time_s[g, j])))
        return entries


class TimeAllocationOptimizer:
    """Projected-gradient solver for Problem 1.

    Args:
        quality_model: Trained DNN Q(.).
        traffic_penalty_per_byte: The paper's small lambda; must be small
            enough that quality dominates (default: 1 SSIM point per GB).
        iterations: Gradient steps.
        seed_fraction_layer0: Initial allocation bias toward the base layer
            (a good, feasible warm start).
    """

    def __init__(
        self,
        quality_model: DNNQualityModel,
        traffic_penalty_per_byte: float = 1e-9,
        iterations: int = 200,
    ) -> None:
        if traffic_penalty_per_byte < 0:
            raise SchedulingError("lambda must be >= 0")
        self.quality_model = quality_model
        self.traffic_penalty_per_byte = float(traffic_penalty_per_byte)
        self.iterations = int(iterations)

    def optimize(
        self,
        groups: Sequence[CandidateGroup],
        contexts: Dict[int, FrameFeatureContext],
        frame_budget_s: float = FRAME_BUDGET_30FPS,
    ) -> AllocationResult:
        """Solve the allocation for one frame.

        Args:
            groups: Candidate groups (with rates) from the enumerator.
            contexts: Per-user frame feature context (layer sizes and the
                static SSIM features the DNN needs).
            frame_budget_s: The 1/FR deadline.
        """
        if not groups:
            raise SchedulingError("no candidate groups")
        users = sorted(contexts)
        if not users:
            raise SchedulingError("no user contexts")
        if not OBS.mode:
            return self._optimize(groups, contexts, users, frame_budget_s)
        with OBS.span(
            "schedule.allocate",
            groups=len(groups),
            users=len(users),
            scheduler="optimized",
        ):
            return self._optimize(groups, contexts, users, frame_budget_s)

    def _optimize(
        self,
        groups: Sequence[CandidateGroup],
        contexts: Dict[int, FrameFeatureContext],
        users: List[int],
        frame_budget_s: float,
    ) -> AllocationResult:
        num_groups = len(groups)
        rates = np.array([g.rate_bytes_per_s for g in groups])  # bytes/s
        membership = np.zeros((len(users), num_groups), dtype=bool)
        for gi, group in enumerate(groups):
            for user in group.user_ids:
                if user in contexts:
                    membership[users.index(user), gi] = True
        layer_sizes = np.vstack(
            [np.asarray(contexts[u].layer_sizes, dtype=float) for u in users]
        )  # (n_users, 4)

        # One group never usefully sends more of a layer than the layer holds
        # (members aggregate across groups, so the surplus is pure waste):
        # cap T_{G,j} <= layer_size_j / R_G.
        caps = layer_sizes.max(axis=0)[None, :] / np.maximum(rates[:, None], 1e-9)

        # Warm start: spend the budget on the largest groups, base layer first.
        time = np.zeros((num_groups, NUM_LAYERS))
        coverage = membership.sum(axis=0) * rates
        best_group = int(np.argmax(coverage))
        time[best_group, :] = frame_budget_s * np.array([0.4, 0.3, 0.2, 0.1])
        time = self._project(time, caps, frame_budget_s)

        step = frame_budget_s / 8.0
        for iteration in range(self.iterations):
            grad = self._gradient(time, rates, membership, layer_sizes, users, contexts)
            norm = float(np.max(np.abs(grad)))
            if norm <= 1e-15:
                break
            time = time + step * grad / norm
            time = self._project(time, caps, frame_budget_s)
            if iteration and iteration % 40 == 0:
                step *= 0.5

        bytes_alloc = time * rates[:, None]
        per_user = {
            u: (membership[k][:, None] * bytes_alloc).sum(axis=0)
            for k, u in enumerate(users)
        }
        predicted = {}
        for u in users:
            feats = contexts[u].features_for_bytes(per_user[u])
            predicted[u] = float(self.quality_model.predict(feats)[0])
        return AllocationResult(
            groups=list(groups),
            time_s=time,
            bytes_allocated=bytes_alloc,
            per_user_bytes=per_user,
            predicted_quality=predicted,
        )

    def _gradient(
        self,
        time: np.ndarray,
        rates: np.ndarray,
        membership: np.ndarray,
        layer_sizes: np.ndarray,
        users: List[int],
        contexts: Dict[int, FrameFeatureContext],
    ) -> np.ndarray:
        """d objective / d T_{G,j} at the current allocation."""
        bytes_alloc = time * rates[:, None]  # (G, 4)
        user_bytes = membership.astype(float) @ bytes_alloc  # (n_users, 4)
        features = np.vstack(
            [
                contexts[u].features_for_bytes(user_bytes[k])
                for k, u in enumerate(users)
            ]
        )
        _, input_grad = self.quality_model.predict_with_input_grad(features)
        # Chain rule through fraction = clip(bytes / size, 0, 1).
        fractions = user_bytes / layer_sizes
        active = fractions < 1.0
        dq_dbytes = input_grad[:, :NUM_LAYERS] * active / layer_sizes  # (n_users, 4)
        dq_dbytes = dq_dbytes - self.traffic_penalty_per_byte
        # dD_ij/dT_Gj = R_G for i in G.
        grad_bytes = membership.T.astype(float) @ dq_dbytes  # (G, 4)
        return grad_bytes * rates[:, None]


    @staticmethod
    def _project(time: np.ndarray, caps: np.ndarray, budget: float) -> np.ndarray:
        """Project onto ``{0 <= T <= caps, sum T <= budget}``.

        Alternating projections between the box and the capped simplex; two
        rounds suffice for ascent purposes.
        """
        projected = np.clip(time, 0.0, caps)
        for _ in range(2):
            projected = _project_capped_simplex(projected, budget)
            projected = np.clip(projected, 0.0, caps)
        return projected


def _project_capped_simplex(time: np.ndarray, budget: float) -> np.ndarray:
    """Euclidean projection onto ``{T >= 0, sum T <= budget}``."""
    clipped = np.maximum(time, 0.0)
    total = clipped.sum()
    if total <= budget:
        return clipped
    # Project onto the simplex {T >= 0, sum T = budget}.
    flat = clipped.ravel()
    sorted_desc = np.sort(flat)[::-1]
    cumulative = np.cumsum(sorted_desc) - budget
    indices = np.arange(1, flat.size + 1)
    rho_candidates = np.nonzero(sorted_desc - cumulative / indices > 0)[0]
    rho = int(rho_candidates[-1])
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(flat - theta, 0.0).reshape(time.shape)
