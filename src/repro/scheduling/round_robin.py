"""Round-robin scheduling baseline (Sec 4.2.2).

"[round-robin] enumerates all possible user groups and uses round-robin to
schedule across different user groups (the sender transmits to each group for
1 ms and then selects the next group ...)".

Time is therefore split equally across candidate groups regardless of their
rate or their members' marginal video quality; within its slice each group
simply fills layers bottom-up for its own members.  Overlapping groups
re-send the same low layers — the redundancy the optimized scheduler avoids.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import SchedulingError
from ..obs import OBS
from ..quality.curves import FrameFeatureContext
from ..types import FRAME_BUDGET_30FPS, NUM_LAYERS
from .allocation import AllocationResult
from .groups import CandidateGroup

#: Round-robin slot length from the paper.
SLOT_S = 1e-3


def round_robin_allocation(
    groups: Sequence[CandidateGroup],
    contexts: Dict[int, FrameFeatureContext],
    frame_budget_s: float = FRAME_BUDGET_30FPS,
) -> AllocationResult:
    """Equal-time round-robin allocation in 1 ms slots.

    Produces the same :class:`AllocationResult` interface as the optimizer so
    the rest of the pipeline is agnostic to the scheduling policy.
    """
    if not groups:
        raise SchedulingError("no candidate groups")
    if OBS.mode:
        with OBS.span(
            "schedule.allocate",
            groups=len(groups),
            users=len(contexts),
            scheduler="round_robin",
        ):
            return _round_robin(groups, contexts, frame_budget_s)
    return _round_robin(groups, contexts, frame_budget_s)


def _round_robin(
    groups: Sequence[CandidateGroup],
    contexts: Dict[int, FrameFeatureContext],
    frame_budget_s: float,
) -> AllocationResult:
    num_groups = len(groups)
    num_slots = max(1, int(frame_budget_s / SLOT_S))
    slots_per_group = np.zeros(num_groups)
    for slot in range(num_slots):
        slots_per_group[slot % num_groups] += 1
    group_time = slots_per_group * SLOT_S

    layer_sizes = _common_layer_sizes(contexts)
    time = np.zeros((num_groups, NUM_LAYERS))
    for gi, group in enumerate(groups):
        budget_bytes = group_time[gi] * group.rate_bytes_per_s
        for layer in range(NUM_LAYERS):
            layer_bytes = min(budget_bytes, layer_sizes[layer])
            time[gi, layer] = (
                layer_bytes / group.rate_bytes_per_s if group.rate_bytes_per_s else 0.0
            )
            budget_bytes -= layer_bytes
            if budget_bytes <= 0:
                break

    bytes_alloc = time * np.array([g.rate_bytes_per_s for g in groups])[:, None]
    users = sorted(contexts)
    membership = np.zeros((len(users), num_groups), dtype=bool)
    for gi, group in enumerate(groups):
        for user in group.user_ids:
            if user in contexts:
                membership[users.index(user), gi] = True
    per_user = {
        u: (membership[k][:, None] * bytes_alloc).sum(axis=0)
        for k, u in enumerate(users)
    }
    return AllocationResult(
        groups=list(groups),
        time_s=time,
        bytes_allocated=bytes_alloc,
        per_user_bytes=per_user,
        predicted_quality={},
    )


def _common_layer_sizes(contexts: Dict[int, FrameFeatureContext]) -> List[float]:
    if not contexts:
        raise SchedulingError("no user contexts")
    first = next(iter(contexts.values()))
    return [float(s) for s in first.layer_sizes]
