#!/usr/bin/env python
"""Multi-AP failover benchmark: SSIM vs LoS-blockage intensity, 1 AP vs 2.

Streams the same placements and the same seeded blockage schedules through
a single-AP config and a two-AP config (association + cross-AP coded
repair) over one shared superset trace per placement, and reports the
mean-SSIM curve against blockage depth.  The qualitative claim under test
— a second AP holds quality up under LoS blockage that a single AP cannot
ride out (the multi-link resilience argument of arXiv:1711.06154) — is
distilled into the ``two_ap_ssim_not_worse_under_blockage`` flag gated by
``perf_gate.py``.

The 1-AP arm is not handicapped: AP0's blockage windows are drawn
identically in both arms (the per-AP schedule extends the single-AP
draws), and AP0's sub-trace of the superset recording is bit-identical to
a 1-AP trace.

Usage::

    PYTHONPATH=src python benchmarks/bench_multi_ap.py          # full
    PYTHONPATH=src python benchmarks/bench_multi_ap.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.emulation import ap_fault_grid, build_context, run_variant_sweep

#: Deep-blockage base shared by every arm: long bursts, high rate, pinned
#: schedule seed — intense enough that quick CI runs still catch bursts
#: inside their short streamed window.
BLOCKAGE_BASE = {
    "faults.seed": "11",
    "faults.blockage_rate_hz": "6",
    "faults.blockage_duration_s": "0.25",
}

#: The 2-AP curve may dip below the 1-AP curve by at most this much at any
#: grid point before the flag trips (placement/loss noise allowance).
SSIM_TOLERANCE = 0.02


def bench_multi_ap(
    ctx,
    depths_db=(0.0, 10.0, 25.0),
    users: int = 3,
    runs: int = 3,
    frames: int = 9,
    jobs=None,
) -> dict:
    """SSIM-vs-blockage-depth curves for 1 AP vs 2 APs.

    One :func:`ap_fault_grid` sweep: every (AP count, depth) arm streams
    the identical placements, traces, and AP0 blockage windows, so the
    only degree of freedom between the 1-AP and 2-AP rows is the topology.
    """
    variants = ap_fault_grid(
        "blockage_depth_db",
        [float(d) for d in depths_db],
        ap_counts=(1, 2),
        base=BLOCKAGE_BASE,
    )
    start = time.perf_counter()
    results = run_variant_sweep(
        ctx, variants, users, ("arc", 4.0, 60),
        runs=runs, frames=frames, jobs=jobs,
    )
    wall_s = time.perf_counter() - start

    curve = {"1ap": {}, "2ap": {}}
    for depth in depths_db:
        for arm in (1, 2):
            name = f"{arm}ap:blockage_depth_db={float(depth)}"
            curve[f"{arm}ap"][f"{float(depth):g}"] = float(
                np.mean(results[name]["ssim"])
            )

    blocked = [f"{float(d):g}" for d in depths_db if float(d) > 0.0]
    not_worse = all(
        curve["2ap"][key] >= curve["1ap"][key] - SSIM_TOLERANCE
        for key in blocked
    )
    deepest = f"{float(max(depths_db)):g}"
    return {
        "users": users,
        "runs": runs,
        "frames": frames,
        "depths_db": [float(d) for d in depths_db],
        "blockage_rate_hz": float(BLOCKAGE_BASE["faults.blockage_rate_hz"]),
        "blockage_duration_s": float(
            BLOCKAGE_BASE["faults.blockage_duration_s"]
        ),
        "ssim_tolerance": SSIM_TOLERANCE,
        "curve": curve,
        "two_ap_advantage_at_max_depth": (
            curve["2ap"][deepest] - curve["1ap"][deepest]
        ),
        "two_ap_ssim_not_worse_under_blockage": bool(not_worse),
        "wall_s": wall_s,
    }


def format_curve(result: dict) -> str:
    lines = ["depth_db    1 AP      2 APs     delta"]
    for depth in result["depths_db"]:
        key = f"{float(depth):g}"
        one = result["curve"]["1ap"][key]
        two = result["curve"]["2ap"][key]
        lines.append(f"{depth:8.1f}  {one:.4f}    {two:.4f}    {two - one:+.4f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs",
    )
    parser.add_argument("--runs", type=int, default=None)
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the result dict as JSON",
    )
    args = parser.parse_args(argv)

    if args.quick:
        ctx = build_context(height=144, width=256, dnn_epochs=60, probe_frames=2)
        runs = args.runs or 2
        frames = args.frames or 6
        depths = (0.0, 25.0)
    else:
        ctx = build_context()
        runs = args.runs or 4
        frames = args.frames or 12
        depths = (0.0, 10.0, 25.0)

    result = bench_multi_ap(
        ctx, depths, runs=runs, frames=frames, jobs=args.jobs
    )
    print(format_curve(result))
    print(f"2-AP advantage at {max(depths):g} dB: "
          f"{result['two_ap_advantage_at_max_depth']:+.4f} SSIM")
    print("two_ap_ssim_not_worse_under_blockage: "
          f"{result['two_ap_ssim_not_worse_under_blockage']}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report: {args.output}")
    return 0 if result["two_ap_ssim_not_worse_under_blockage"] else 1


if __name__ == "__main__":
    sys.exit(main())
