#!/usr/bin/env python
"""Service-layer load test: N receivers across M concurrent sessions.

Boots a real :class:`repro.service.ServiceServer` inside one event loop,
starts ``--sessions`` broadcasters, connects ``--receivers`` TCP receiver
clients spread across them, then applies a seeded churn schedule (random
leaves and rejoins through the wire protocol) and a feedback storm while
every session is actively streaming frames.  It records:

* ``sessions_per_s`` — full start -> stream -> stop lifecycles per second,
* ``control_msgs_per_s`` and feedback RTT percentiles (p50/p95/p99),
* dropped / rejected control-message counts (the acceptance criterion is
  zero of both),
* ``membership_reflected`` — after the churn schedule, ``/status`` must
  report exactly the membership the driver tracked locally,
* ``clean_shutdown`` — the graceful drain path completed.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py           # full
    PYTHONPATH=src python benchmarks/bench_service_load.py --quick   # CI smoke

Full sizes exercise >=100 receivers across >=8 sessions; ``--quick`` runs
>=50 receivers across >=4 sessions for CI.  The stage dict is embedded as
``service_load`` in ``BENCH_PERF.json`` by ``bench_perf_pipeline.py``;
standalone runs write ``bench_service_load.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.emulation import ExperimentContext, build_context
from repro.errors import ServiceError
from repro.perf import throughput, write_bench_report
from repro.service import ReceiverClient, ServiceServer, http_request

#: Broadcasters pace frames so the (often single-core) event loop keeps
#: scheduling room for control traffic while every stream stays live —
#: roughly the cadence of a live feed at these bench resolutions.
FRAME_INTERVAL_S = 0.1

#: Concurrent in-flight churn operations; ops on the same (session, user)
#: stay ordered, distinct receivers churn in parallel.
CHURN_CHUNK = 8

#: Far beyond what any phase streams — sessions stay running until /stop.
UNBOUNDED_FRAMES = 1_000_000

REQUEST_TIMEOUT_S = 120.0


async def _drive_load(
    ctx: ExperimentContext,
    sessions: int,
    receivers: int,
    churn_ops: int,
    feedback_rounds: int,
    seed: int,
) -> dict:
    users_per_session = -(-receivers // sessions)  # ceil
    server = ServiceServer(ctx, log=None, frame_interval_s=FRAME_INTERVAL_S)
    await server.start()
    host = server.host
    rng = random.Random(seed)

    rtts: list = []
    dropped = 0
    rejected = 0
    control_msgs = 0
    t_start = time.perf_counter()
    phase_s: dict = {}
    t_phase = t_start

    def phase(name: str) -> None:
        nonlocal t_phase
        now = time.perf_counter()
        phase_s[name] = now - t_phase
        t_phase = now

    async def tracked(coro):
        """Run one control request, folding its fate into the tallies."""
        nonlocal control_msgs, dropped, rejected
        try:
            _, rtt = await coro
        except (asyncio.TimeoutError, ConnectionError):
            dropped += 1
            return None
        except ServiceError:
            rejected += 1
            return None
        control_msgs += 1
        rtts.append(rtt)
        return rtt

    try:
        # -- start M concurrent sessions ---------------------------------
        session_ids = []
        for index in range(sessions):
            _, body = await http_request(
                host, server.control_port, "POST", "/start",
                {"users": users_per_session, "frames": UNBOUNDED_FRAMES,
                 "seed": seed + index},
                timeout=REQUEST_TIMEOUT_S,
            )
            session_ids.append(body["session"])
        phase("start_sessions")

        # -- connect N receivers, one (session, user) each ---------------
        assignments = [
            (session_ids[i % sessions], (i // sessions) % users_per_session)
            for i in range(receivers)
        ]
        unique_keys = sorted(set(assignments))
        connections = await asyncio.gather(*[
            ReceiverClient.connect(host, server.receiver_port)
            for _ in unique_keys
        ])
        clients = dict(zip(unique_keys, connections))
        phase("connect")
        join_rtts = await asyncio.gather(*[
            tracked(clients[key].join(key[0], key[1],
                                      timeout=REQUEST_TIMEOUT_S))
            for key in clients
        ])
        phase("join")

        # -- seeded churn: leaves and rejoins against live sessions ------
        # The schedule is drawn up front (fully determined by the seed),
        # then executed in chunks: distinct receivers churn concurrently,
        # repeat ops on one (session, user) stay strictly ordered.
        membership = {
            sid: set(range(users_per_session)) for sid in session_ids
        }
        keys = sorted(clients)
        schedule = []
        for _ in range(churn_ops):
            sid, user = keys[rng.randrange(len(keys))]
            if user in membership[sid]:
                schedule.append((sid, user, "leave"))
                membership[sid].discard(user)
            else:
                schedule.append((sid, user, "join"))
                membership[sid].add(user)

        joins = leaves = 0
        index = 0
        while index < len(schedule):
            chunk = []
            seen = set()
            while (index < len(schedule) and len(chunk) < CHURN_CHUNK
                   and schedule[index][:2] not in seen):
                chunk.append(schedule[index])
                seen.add(schedule[index][:2])
                index += 1
            results = await asyncio.gather(*[
                tracked(
                    clients[(sid, user)].leave(sid, user,
                                               timeout=REQUEST_TIMEOUT_S)
                    if action == "leave" else
                    clients[(sid, user)].join(sid, user,
                                              timeout=REQUEST_TIMEOUT_S)
                )
                for sid, user, action in chunk
            ])
            for (sid, user, action), rtt in zip(chunk, results):
                if rtt is None:
                    continue
                if action == "leave":
                    leaves += 1
                else:
                    joins += 1
        phase("churn")

        # -- the churn must be visible on the control plane --------------
        _, status = await http_request(
            host, server.control_port, "GET", "/status",
            timeout=REQUEST_TIMEOUT_S,
        )
        reported = {
            entry["id"]: entry["members"] for entry in status["sessions"]
        }
        membership_reflected = all(
            reported[sid] == sorted(membership[sid]) for sid in session_ids
        )
        phase("verify_status")

        # -- feedback storm while every stream is still live -------------
        feedback_rtts: list = []
        for _ in range(feedback_rounds):
            round_rtts = await asyncio.gather(*[
                tracked(clients[(sid, user)].feedback(
                    sid, user, rng.random(), timeout=REQUEST_TIMEOUT_S
                ))
                for sid, user in keys if user in membership[sid]
            ])
            feedback_rtts.extend(r for r in round_rtts if r is not None)
        phase("feedback")

        # -- tear down: close receivers, stop every session, drain -------
        await asyncio.gather(*[c.close() for c in clients.values()])
        finals = []
        for sid in session_ids:
            _, final = await http_request(
                host, server.control_port, "POST", "/stop",
                {"session": sid}, timeout=REQUEST_TIMEOUT_S,
            )
            finals.append(final)
        frames_streamed = sum(f["frames_streamed"] for f in finals)
        all_stopped = all(f["state"] == "stopped" for f in finals)

        await server.shutdown()
        clean_shutdown = all_stopped and server._shutdown_done.is_set()
        phase("teardown")
    except BaseException:
        await server.shutdown()
        raise
    wall_s = time.perf_counter() - t_start

    joined_ok = sum(1 for r in join_rtts if r is not None)
    percentiles = (
        np.percentile(feedback_rtts, [50, 95, 99]).tolist()
        if feedback_rtts else [None, None, None]
    )
    return {
        "sessions": sessions,
        "receivers": receivers,
        "users_per_session": users_per_session,
        "churn_ops": churn_ops,
        "churn_joins": joins,
        "churn_leaves": leaves,
        "feedback_reports": len(feedback_rtts),
        "frames_streamed": frames_streamed,
        "wall_s": wall_s,
        "sessions_per_s": throughput(sessions, wall_s),
        "control_msgs": control_msgs,
        "control_msgs_per_s": throughput(control_msgs, wall_s),
        "feedback_rtt_p50_s": percentiles[0],
        "feedback_rtt_p95_s": percentiles[1],
        "feedback_rtt_p99_s": percentiles[2],
        "dropped_msgs": dropped,
        "rejected_msgs": rejected,
        "receivers_joined": joined_ok,
        "zero_dropped": dropped == 0 and rejected == 0,
        "membership_reflected": bool(membership_reflected),
        "clean_shutdown": bool(clean_shutdown),
        "phase_s": {name: round(value, 4)
                    for name, value in phase_s.items()},
    }


def bench_service_load(
    ctx: ExperimentContext,
    sessions: int,
    receivers: int,
    churn_ops: int,
    feedback_rounds: int = 2,
    seed: int = 0,
) -> dict:
    """Run the load scenario; returns the ``service_load`` stage dict."""
    return asyncio.run(
        _drive_load(ctx, sessions, receivers, churn_ops, feedback_rounds, seed)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI sizes: >=50 receivers across >=4 sessions",
    )
    parser.add_argument("--sessions", type=int, default=None,
                        help="concurrent sessions (default 8, quick 4)")
    parser.add_argument("--receivers", type=int, default=None,
                        help="receiver connections (default 104, quick 52)")
    parser.add_argument("--churn-ops", type=int, default=None,
                        help="seeded leave/rejoin operations "
                             "(default 80, quick 40)")
    parser.add_argument("--feedback-rounds", type=int, default=2,
                        help="feedback reports per receiver (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path,
        default=REPO_ROOT / "bench_service_load.json",
        help="report path (default: bench_service_load.json at repo root)",
    )
    args = parser.parse_args(argv)

    sessions = args.sessions or (4 if args.quick else 8)
    receivers = args.receivers or (52 if args.quick else 104)
    churn_ops = args.churn_ops if args.churn_ops is not None else (
        40 if args.quick else 80
    )
    if args.quick:
        ctx = build_context(height=144, width=256, dnn_epochs=60,
                            probe_frames=2)
    else:
        ctx = build_context()

    print(f"service load: {receivers} receivers across {sessions} sessions, "
          f"{churn_ops} churn ops, seed={args.seed}")
    stage = bench_service_load(
        ctx, sessions, receivers, churn_ops,
        feedback_rounds=args.feedback_rounds, seed=args.seed,
    )
    path = write_bench_report(args.output, {"schema": 1, "service_load": stage})

    print(f"wall                 : {stage['wall_s']:8.2f} s "
          f"({stage['sessions_per_s']:.3f} sessions/s, "
          f"{stage['frames_streamed']} frames)")
    print(f"control plane        : {stage['control_msgs']} msgs "
          f"({stage['control_msgs_per_s']:.1f} msgs/s)")
    print(f"feedback RTT         : p50 {stage['feedback_rtt_p50_s']:.4f} s, "
          f"p95 {stage['feedback_rtt_p95_s']:.4f} s, "
          f"p99 {stage['feedback_rtt_p99_s']:.4f} s")
    print(f"churn                : {stage['churn_leaves']} leaves, "
          f"{stage['churn_joins']} rejoins "
          f"(reflected: {stage['membership_reflected']})")
    print(f"dropped / rejected   : {stage['dropped_msgs']} / "
          f"{stage['rejected_msgs']}")
    print(f"clean shutdown       : {stage['clean_shutdown']}")
    print(f"report               : {path}")

    ok = (stage["zero_dropped"] and stage["membership_reflected"]
          and stage["clean_shutdown"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
