"""Fig 11: emulation — SSIM vs number of users (2/4/6/8) x beamforming.

Setup: users randomly placed 8-16 m from the AP, MAS 120 degrees.
Paper: optimized multicast improves over preMC/optUC/preUC by
0.010/0.013/0.025 (2 users) up to 0.035/0.060/0.083 (8 users): the
multicast benefit increases with the number of users.
"""

from repro.emulation import run_beamforming_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import assert_winner, mean_of, print_box_table


def test_fig11_emulation_users(benchmark, ctx):
    def experiment():
        return {
            n: run_beamforming_comparison(
                ctx, n, ("range", 8, 16, 120),
                runs=BENCH_RUNS, frames=BENCH_FRAMES,
            )
            for n in (2, 4, 6, 8)
        }

    per_users = run_once(benchmark, experiment)

    for n, results in per_users.items():
        print_box_table(f"Fig 11: {n} users, 8-16 m, MAS 120", results)

    for n in (4, 6, 8):
        assert_winner(
            per_users[n], "optimized_multicast",
            ["predefined_multicast", "optimized_unicast", "predefined_unicast"],
            slack=0.015,
        )
    gain_small = mean_of(per_users[2], "optimized_multicast") - mean_of(
        per_users[2], "predefined_unicast"
    )
    gain_large = mean_of(per_users[8], "optimized_multicast") - mean_of(
        per_users[8], "predefined_unicast"
    )
    print(f"\noptMC - preUC: {gain_small:+.3f} at 2 users, "
          f"{gain_large:+.3f} at 8 users (paper: +0.025 -> +0.083)")
    assert gain_large >= gain_small - 0.02
