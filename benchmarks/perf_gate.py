#!/usr/bin/env python
"""CI perf-regression gate: diff a candidate benchmark report vs a baseline.

Compares the throughput metrics of a fresh ``bench_perf_pipeline.py`` run
(the *candidate*) against a committed baseline report and fails — exit
code 1 — when any stage regresses by more than the tolerance (default
30%, generous because shared CI runners are noisy).  Improvements never
fail the gate.  The full comparison is written as a JSON artifact so a
failing run can be inspected without re-running the benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py --quick \
        --output bench_candidate.json
    python benchmarks/perf_gate.py --baseline BENCH_PERF_QUICK.json \
        --candidate bench_candidate.json --output perf_gate_report.json

``--inject-slowdown 2.0`` divides every candidate throughput by the given
factor before comparing — a self-test hook proving the gate actually
fails on a regression (used by the test suite and documented in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Throughput metrics defended by the gate, as (stage, key) paths into the
#: benchmark report.  All are higher-is-better rates.
GATED_METRICS = (
    ("jigsaw_encode", "fps_serial"),
    ("fountain_encode", "batched_warm_msymbols_per_s"),
    ("precode", "encode_msymbols_per_s"),
    ("fountain_decode", "incremental_msymbols_per_s"),
    ("ssim", "frames_per_s_float32"),
    ("emulation", "optimized_runs_per_s"),
    ("emulation_scale", "speedup_at_100_users"),
    ("emulation_scale", "optimized_runs_per_s_at_100_users"),
    ("sweep_shard", "points_per_s_persistent"),
    ("service_load", "control_msgs_per_s"),
)

#: Correctness booleans that must hold in the candidate regardless of speed.
REQUIRED_FLAGS = (
    ("emulation", "metrics_identical"),
    ("emulation", "decoded_frames_identical"),
    ("precode", "decode_subcubic"),
    ("precode", "roundtrip_identical"),
    ("emulation_scale", "metrics_identical"),
    ("sweep_shard", "merged_identical"),
    ("service_load", "zero_dropped"),
    ("service_load", "membership_reflected"),
    ("service_load", "clean_shutdown"),
    ("multi_ap", "two_ap_ssim_not_worse_under_blockage"),
)

DEFAULT_TOLERANCE = 0.30


def load_report(path: Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def extract_metrics(report: dict, slowdown: float = 1.0) -> dict:
    """Pull the gated throughput metrics out of a benchmark report."""
    stages = report.get("stages", {})
    metrics = {}
    for stage, key in GATED_METRICS:
        value = stages.get(stage, {}).get(key)
        if value is not None:
            metrics[f"{stage}.{key}"] = float(value) / slowdown
    return metrics


def compare(
    baseline: dict,
    candidate: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    slowdown: float = 1.0,
) -> dict:
    """Build the gate verdict comparing two benchmark reports.

    Returns a JSON-serializable dict with one row per gated metric
    (baseline/candidate values, ratio, pass/fail) plus the overall verdict.
    A metric present in the baseline but missing from the candidate fails
    the gate — silently dropping a stage must not read as a pass.
    """
    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate, slowdown=slowdown)
    floor = 1.0 - tolerance

    rows = []
    for name, base_value in sorted(base_metrics.items()):
        cand_value = cand_metrics.get(name)
        if cand_value is None:
            rows.append({
                "metric": name,
                "baseline": base_value,
                "candidate": None,
                "ratio": None,
                "ok": False,
                "note": "missing from candidate report",
            })
            continue
        ratio = cand_value / base_value if base_value else float("inf")
        rows.append({
            "metric": name,
            "baseline": base_value,
            "candidate": cand_value,
            "ratio": ratio,
            "ok": ratio >= floor,
            "note": "",
        })

    flags = []
    cand_stages = candidate.get("stages", {})
    for stage, key in REQUIRED_FLAGS:
        value = cand_stages.get(stage, {}).get(key)
        flags.append({"flag": f"{stage}.{key}", "value": value, "ok": bool(value)})

    # Parallel jigsaw encode must never lose to serial (the parallel_map
    # break-even fallback guarantees this up to timing noise, bounded by
    # the same tolerance as the throughput metrics).
    jig = cand_stages.get("jigsaw_encode", {})
    fps_parallel = jig.get("fps_parallel")
    fps_serial = jig.get("fps_serial")
    if fps_parallel is not None and fps_serial:
        ratio = float(fps_parallel) / float(fps_serial)
        flags.append({
            "flag": "jigsaw_encode.parallel_not_slower",
            "value": round(ratio, 3),
            "ok": ratio >= floor,
        })

    # The persistent worker pool must never lose to the fork-per-campaign
    # pool it replaces — its whole point is amortizing worker startup and
    # context shipping.  Same noise tolerance as the throughput metrics.
    sweep = cand_stages.get("sweep_shard", {})
    pool_ratio = sweep.get("persistent_vs_fork_ratio")
    if pool_ratio is not None:
        pool_ratio = float(pool_ratio)
        flags.append({
            "flag": "sweep_shard.persistent_not_slower_than_fork",
            "value": round(pool_ratio, 3),
            "ok": pool_ratio >= floor,
        })

    passed = all(r["ok"] for r in rows) and all(f["ok"] for f in flags)
    return {
        "schema": 1,
        "tolerance": tolerance,
        "injected_slowdown": slowdown,
        "passed": passed,
        "metrics": rows,
        "flags": flags,
        "baseline_host": baseline.get("host", {}),
        "candidate_host": candidate.get("host", {}),
    }


def format_comparison(result: dict) -> str:
    """Human-readable table of the gate verdict for the CI log."""
    lines = [
        f"perf gate (tolerance {result['tolerance']:.0%}, "
        f"floor {1.0 - result['tolerance']:.2f}x baseline)"
    ]
    if result["injected_slowdown"] != 1.0:
        lines.append(
            f"  !! candidate slowed by x{result['injected_slowdown']:g} "
            "(--inject-slowdown self-test)"
        )
    for row in result["metrics"]:
        if row["candidate"] is None:
            lines.append(
                f"  FAIL {row['metric']:45} {row['note']}"
            )
            continue
        status = "ok  " if row["ok"] else "FAIL"
        lines.append(
            f"  {status} {row['metric']:45} "
            f"{row['baseline']:12.4f} -> {row['candidate']:12.4f} "
            f"({row['ratio']:.2f}x)"
        )
    for flag in result["flags"]:
        status = "ok  " if flag["ok"] else "FAIL"
        lines.append(f"  {status} {flag['flag']:45} {flag['value']}")
    lines.append("verdict: " + ("PASS" if result["passed"] else "FAIL"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed baseline benchmark report (JSON)",
    )
    parser.add_argument(
        "--candidate", type=Path, required=True,
        help="freshly generated benchmark report to judge",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the full comparison as a JSON artifact",
    )
    parser.add_argument(
        "--inject-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="divide candidate throughputs by FACTOR (gate self-test)",
    )
    args = parser.parse_args(argv)

    result = compare(
        load_report(args.baseline),
        load_report(args.candidate),
        tolerance=args.tolerance,
        slowdown=args.inject_slowdown,
    )
    print(format_comparison(result))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"comparison artifact: {args.output}")
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
