#!/usr/bin/env python
"""Sharded sweep scheduler benchmark: persistent pool vs fork-per-call.

Times the same variant-sweep campaign three ways — serial in-process,
``run_variant_sweep`` with a fork-per-campaign process pool (the pre-shard
parallel path, which re-pickles the experiment context into every pool),
and ``run_sharded_sweep`` on the persistent shared-memory worker pool —
and reports campaign points/s for each, the parallel efficiency of the
persistent arm, and the persistent-vs-fork ratio the perf gate defends
(``sweep_shard.persistent_not_slower_than_fork``).

All three arms must produce bit-identical merged results
(``merged_identical``); the scheduler's per-run seeding makes the shard
count, worker count, and completion order irrelevant to the output.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_shard.py           # full
    PYTHONPATH=src python benchmarks/bench_sweep_shard.py --quick   # CI smoke

The stage dict is embedded as ``sweep_shard`` in ``BENCH_PERF.json`` by
``bench_perf_pipeline.py``; standalone runs write ``bench_sweep_shard.json``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.emulation import ExperimentContext, build_context, run_sharded_sweep
from repro.emulation.sweep import run_variant_sweep, variant_from_spec
from repro.perf import speedup, throughput, time_call, write_bench_report

PLACEMENT = ("arc", 5.0, 60)

#: Two-variant campaign: the paper's default pipeline vs round-robin
#: scheduling — cheap enough for CI, distinct enough that a merge bug
#: (crossed variants, reordered runs) cannot cancel out.
VARIANT_SPECS = ("base", "rr:scheduler=round_robin")


def bench_sweep_shard(
    ctx: ExperimentContext,
    runs: int,
    frames: int,
    shards: int,
    jobs: int,
    users: int = 2,
    checkpoint_dir: Path | None = None,
) -> dict:
    """Time serial / fork-per-call / persistent-pool arms of one campaign."""
    variants = [variant_from_spec(spec) for spec in VARIANT_SPECS]
    points = runs * len(variants)

    serial_results, serial_s = time_call(
        lambda: run_variant_sweep(
            ctx, variants, users, PLACEMENT, runs=runs, frames=frames, jobs=1
        )
    )
    fork_results, fork_s = time_call(
        lambda: run_variant_sweep(
            ctx, variants, users, PLACEMENT, runs=runs, frames=frames, jobs=jobs
        )
    )

    def persistent_arm() -> dict:
        with tempfile.TemporaryDirectory(dir=checkpoint_dir) as tmp:
            return run_sharded_sweep(
                ctx, variants, users, PLACEMENT, runs=runs, frames=frames,
                shards=shards, checkpoint=Path(tmp) / "ck.jsonl", jobs=jobs,
            )

    persistent_results, persistent_s = time_call(persistent_arm)

    return {
        "runs": runs,
        "frames": frames,
        "users": users,
        "shards": shards,
        "jobs": jobs,
        "points": points,
        "resolution": f"{ctx.height}x{ctx.width}",
        "serial_wall_s": serial_s,
        "fork_wall_s": fork_s,
        "persistent_wall_s": persistent_s,
        "points_per_s_serial": throughput(points, serial_s),
        "points_per_s_fork": throughput(points, fork_s),
        "points_per_s_persistent": throughput(points, persistent_s),
        "speedup_vs_serial": speedup(serial_s, persistent_s),
        "parallel_efficiency": speedup(serial_s, persistent_s) / jobs,
        "persistent_vs_fork_ratio": speedup(fork_s, persistent_s),
        "merged_identical": (
            serial_results == fork_results == persistent_results
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (~a minute)",
    )
    parser.add_argument("--runs", type=int, default=None,
                        help="campaign runs (default 12, quick 8)")
    parser.add_argument("--frames", type=int, default=None,
                        help="frames per run (default 3, quick 2)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default = runs)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the parallel arms (default 2)")
    parser.add_argument(
        "--output", type=Path,
        default=REPO_ROOT / "bench_sweep_shard.json",
        help="report path (default: bench_sweep_shard.json at the repo root)",
    )
    args = parser.parse_args(argv)

    runs = args.runs or (8 if args.quick else 12)
    frames = args.frames or (2 if args.quick else 3)
    shards = args.shards or runs
    if args.quick:
        ctx = build_context(height=144, width=256, dnn_epochs=60, probe_frames=2)
    else:
        ctx = build_context()

    print(
        f"sweep shard bench: {runs} runs x {len(VARIANT_SPECS)} variants, "
        f"{shards} shards, jobs={args.jobs}"
    )
    stage = bench_sweep_shard(ctx, runs, frames, shards, args.jobs)
    path = write_bench_report(args.output, {"schema": 1, "sweep_shard": stage})

    print(f"serial      : {stage['serial_wall_s']:8.2f} s "
          f"({stage['points_per_s_serial']:.3f} points/s)")
    print(f"fork        : {stage['fork_wall_s']:8.2f} s "
          f"({stage['points_per_s_fork']:.3f} points/s)")
    print(f"persistent  : {stage['persistent_wall_s']:8.2f} s "
          f"({stage['points_per_s_persistent']:.3f} points/s, "
          f"x{stage['speedup_vs_serial']:.2f} vs serial, "
          f"{stage['parallel_efficiency']:.2f} efficiency)")
    print(f"vs fork     : x{stage['persistent_vs_fork_ratio']:.2f}")
    print(f"identical   : {stage['merged_identical']}")
    print(f"report      : {path}")
    return 0 if stage["merged_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
