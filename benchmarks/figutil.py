"""Shared printing/assertion helpers for the figure benchmarks."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.emulation.stats import BoxStats

SCHEME_ORDER = (
    "optimized_multicast",
    "predefined_multicast",
    "optimized_unicast",
    "predefined_unicast",
)


def print_box_table(
    title: str, results: Dict[str, Dict[str, List[float]]], metric: str = "ssim"
) -> Dict[str, BoxStats]:
    """Print box statistics per case and return them."""
    print(f"\n=== {title} [{metric}] ===")
    width = max(len(k) for k in results)
    print(f"{'case'.ljust(width)}    min     q1    med     q3    max |  mean")
    stats = {}
    for key, samples in results.items():
        box = BoxStats.from_samples(samples[metric])
        stats[key] = box
        print(f"{key.ljust(width)} {box.row()}")
    return stats


def mean_of(results: Dict[str, Dict[str, List[float]]], key: str,
            metric: str = "ssim") -> float:
    """Mean of one case's samples."""
    return float(np.mean(results[key][metric]))


def assert_winner(
    results: Dict[str, Dict[str, List[float]]],
    winner: str,
    losers,
    metric: str = "ssim",
    slack: float = 0.0,
) -> None:
    """The paper's winner must win (within optional slack for run noise)."""
    top = mean_of(results, winner, metric)
    for loser in losers:
        assert top >= mean_of(results, loser, metric) - slack, (
            f"{winner} ({top:.3f}) did not beat {loser} "
            f"({mean_of(results, loser, metric):.3f})"
        )
