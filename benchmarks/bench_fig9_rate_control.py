"""Fig 9: leaky-bucket rate control on vs off (3 users, 3 m, MAS 60).

Paper: without rate control the kernel queue overflows, costing ~0.01 SSIM /
1.3 dB PSNR and adding variance across runs.
"""

import numpy as np

from repro.emulation import run_ablation

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import mean_of, print_box_table


def test_fig9_rate_control(benchmark, ctx):
    def experiment():
        return run_ablation(
            ctx, "rate_control", 3, ("arc", 3, 60),
            runs=max(BENCH_RUNS, 4), frames=BENCH_FRAMES,
        )

    results = run_once(benchmark, experiment)

    print_box_table("Fig 9: rate control (3 users, 3 m, MAS 60)", results)
    print_box_table("Fig 9 (PSNR)", results, "psnr")

    with_rc = mean_of(results, "with_rate_control")
    without_rc = mean_of(results, "without_rate_control")
    print(f"\nwith - without: {with_rc - without_rc:+.3f} SSIM (paper: +0.01)")
    assert with_rc >= without_rc - 0.005, "rate control should not hurt"
    spread_with = np.std(results["with_rate_control"]["ssim"])
    spread_without = np.std(results["without_rate_control"]["ssim"])
    print(f"std with: {spread_with:.4f}, without: {spread_without:.4f} "
          f"(paper: larger variance without)")
