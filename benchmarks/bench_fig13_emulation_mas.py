"""Fig 13: emulation — MAS sweep with 6 users at 12 m.

Paper: multicast (optimized or predefined) beats unicast at every MAS;
multicast is best at small MAS (concentrated beams) while unicast is
insensitive to MAS.
"""

import numpy as np

from repro.emulation import run_beamforming_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import assert_winner, mean_of, print_box_table


def test_fig13_mas_sweep_6_users(benchmark, ctx):
    def experiment():
        return {
            mas: run_beamforming_comparison(
                ctx, 6, ("arc", 12, mas), runs=BENCH_RUNS, frames=BENCH_FRAMES
            )
            for mas in (30, 75, 120)
        }

    per_mas = run_once(benchmark, experiment)

    for mas, results in per_mas.items():
        print_box_table(f"Fig 13: 6 users at 12 m, MAS {mas}", results)

    for mas, results in per_mas.items():
        assert_winner(
            results, "optimized_multicast",
            ["optimized_unicast", "predefined_unicast"],
            slack=0.015,
        )
    # Multicast should be strongest at small MAS.
    small = mean_of(per_mas[30], "optimized_multicast")
    large = mean_of(per_mas[120], "optimized_multicast")
    print(f"\noptimized multicast: MAS 30 {small:.3f} vs MAS 120 {large:.3f} "
          f"(paper: best when MAS is small)")
    assert small >= large - 0.02
    # Unicast stays comparatively flat across MAS.
    unicast_swing = np.ptp(
        [mean_of(per_mas[m], "optimized_unicast") for m in per_mas]
    )
    multicast_swing = np.ptp(
        [mean_of(per_mas[m], "optimized_multicast") for m in per_mas]
    )
    print(f"swing: multicast {multicast_swing:.3f}, unicast {unicast_swing:.3f}")
