#!/usr/bin/env python
"""Per-stage performance benchmark for the streaming pipeline.

Measures the throughput of every pipeline stage the paper's 30 fps / 4K
budget depends on — jigsaw encode, fountain encode/decode, SSIM scoring,
and full emulation runs — for both the original (seed) implementations and
the optimized batched/incremental/parallel ones, and writes the results to
``BENCH_PERF.json`` at the repository root.  Subsequent PRs diff against
that file to defend the performance trajectory.

The seed and optimized paths are bit-compatible: the harness asserts that
emulation metrics and decoded frame bytes are identical across them before
reporting any speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py --quick   # CI smoke

``--jobs`` (default: ``REPRO_JOBS`` or 4) sets the process-pool width of
the parallel emulation arm.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import numpy as np

from bench_multi_ap import bench_multi_ap
from bench_precode import bench_precode
from bench_scale_users import USER_COUNTS_FULL, USER_COUNTS_QUICK, bench_emulation_scale
from bench_service_load import bench_service_load
from bench_sweep_shard import bench_sweep_shard

from repro.emulation import build_context, run_scheduler_comparison
from repro.fountain.block import (
    FrameBlockDecoder,
    FrameBlockEncoder,
    symbol_size_for,
)
from repro.fountain.raptor import COEFFICIENT_CACHE, FountainDecoder, FountainEncoder
from repro.perf import (
    effective_jobs,
    perf_mode,
    speedup,
    throughput,
    time_call,
    time_call_best,
    write_bench_report,
)
from repro.perf.encode import encode_frames
from repro.types import Richness
from repro.video.jigsaw import JigsawCodec, LayerStructure
from repro.video.metrics import ssim
from repro.video.synthetic import SyntheticVideo


# ------------------------------------------------------------------- stages


def bench_jigsaw_encode(height: int, width: int, frames: int, jobs: int) -> dict:
    """Jigsaw encode throughput (fps), serial and fanned across cores."""
    video = SyntheticVideo(
        "bench-jigsaw", Richness.HIGH, height, width, num_frames=frames, seed=3
    )
    codec = JigsawCodec(height, width)
    frame_objs = [video.frame(i) for i in range(frames)]
    _, serial_s = time_call(lambda: [codec.encode(f) for f in frame_objs])
    result = {
        "frames": frames,
        "resolution": f"{height}x{width}",
        "fps_serial": throughput(frames, serial_s),
        "fps_parallel": None,
        "jobs": jobs,
    }
    if jobs > 1:
        _, parallel_s = time_call(
            lambda: encode_frames(codec, frame_objs, jobs=jobs)
        )
        result["fps_parallel"] = throughput(frames, parallel_s)
    return result


def bench_fountain_encode(structure: LayerStructure, repair_symbols: int) -> dict:
    """Repair-symbol encode throughput: seed per-symbol vs one-matmul batch."""
    symbol_size = symbol_size_for(structure)
    rng = np.random.default_rng(11)
    data = rng.integers(
        0, 256, size=structure.sublayer_nbytes, dtype=np.uint8
    ).tobytes()

    with perf_mode("seed"):
        encoder = FountainEncoder(1_000_001, data, symbol_size)
        k = encoder.num_source_symbols
        _, seed_s = time_call(lambda: encoder.symbols(k, repair_symbols))

    COEFFICIENT_CACHE.clear()
    encoder = FountainEncoder(1_000_001, data, symbol_size)
    batch_cold, cold_s = time_call(lambda: encoder.symbols(k, repair_symbols))
    # The warm call is sub-millisecond at quick sizes; best-of-5 keeps the
    # gated throughput row from flapping on scheduler noise.
    batch_warm, warm_s = time_call_best(
        lambda: encoder.symbols(k, repair_symbols), repeats=5
    )
    assert [s.payload for s in batch_cold] == [s.payload for s in batch_warm]

    return {
        "k": k,
        "symbol_bytes": symbol_size,
        "repair_symbols": repair_symbols,
        "seed_msymbols_per_s": throughput(repair_symbols, seed_s) / 1e6,
        "batched_cold_msymbols_per_s": throughput(repair_symbols, cold_s) / 1e6,
        "batched_warm_msymbols_per_s": throughput(repair_symbols, warm_s) / 1e6,
        "speedup_cold_vs_seed": speedup(seed_s, cold_s),
        "speedup_vs_seed": speedup(seed_s, warm_s),
    }


def bench_fountain_decode(structure: LayerStructure, blocks: int) -> dict:
    """Decode throughput: full re-solve per attempt vs incremental pivots.

    Each trial receives a lossy mix (40% of systematic symbols replaced by
    repair symbols) so the decoder actually has to eliminate.
    """
    symbol_size = symbol_size_for(structure)
    rng = np.random.default_rng(13)
    data = rng.integers(
        0, 256, size=structure.sublayer_nbytes, dtype=np.uint8
    ).tobytes()
    encoder = FountainEncoder(2_000_002, data, symbol_size)
    k = encoder.num_source_symbols
    lost = max(1, int(0.4 * k))
    keep = [s for s in encoder.symbols(0, k) if s.symbol_id >= lost]
    keep += encoder.symbols(k, lost + 2)
    symbols_per_block = len(keep)

    def run_decoders() -> int:
        decoded = 0
        for _ in range(blocks):
            decoder = FountainDecoder(2_000_002, len(data), symbol_size)
            for symbol in keep:
                decoder.add_symbol(symbol)
            decoded += decoder.is_decoded
        return decoded

    with perf_mode("seed"):
        seed_decoded, seed_s = time_call(run_decoders)
    incremental_decoded, incremental_s = time_call(run_decoders)
    assert seed_decoded == incremental_decoded == blocks

    total_symbols = blocks * symbols_per_block
    return {
        "k": k,
        "symbol_bytes": symbol_size,
        "blocks": blocks,
        "symbols_per_block": symbols_per_block,
        "seed_msymbols_per_s": throughput(total_symbols, seed_s) / 1e6,
        "incremental_msymbols_per_s": throughput(total_symbols, incremental_s) / 1e6,
        "speedup_vs_seed": speedup(seed_s, incremental_s),
    }


def bench_ssim(height: int, width: int, repeats: int) -> dict:
    """SSIM scoring throughput, float32 working precision vs float64."""
    video = SyntheticVideo(
        "bench-ssim", Richness.HIGH, height, width, num_frames=2, seed=5
    )
    codec = JigsawCodec(height, width)
    reference = video.frame(0)
    degraded = codec.decode_fractions(codec.encode(reference), [1, 1, 0.5, 0])

    _, f64_s = time_call(
        lambda: [ssim(reference, degraded, dtype=np.float64) for _ in range(repeats)]
    )
    _, f32_s = time_call(
        lambda: [ssim(reference, degraded, dtype=np.float32) for _ in range(repeats)]
    )
    delta = abs(
        ssim(reference, degraded, dtype=np.float32)
        - ssim(reference, degraded, dtype=np.float64)
    )
    return {
        "resolution": f"{height}x{width}",
        "repeats": repeats,
        "frames_per_s_float64": throughput(repeats, f64_s),
        "frames_per_s_float32": throughput(repeats, f32_s),
        "speedup_vs_float64": speedup(f64_s, f32_s),
        "float32_vs_float64_abs_delta": float(delta),
    }


def check_decoded_frames_identical(structure: LayerStructure) -> bool:
    """Seed and optimized codecs must reassemble byte-identical frames."""
    height, width = structure.height, structure.width
    video = SyntheticVideo(
        "bench-identity", Richness.HIGH, height, width, num_frames=1, seed=9
    )
    codec = JigsawCodec(height, width)
    layered = codec.encode(video.frame(0))

    def transmit_and_assemble() -> bytes:
        encoder = FrameBlockEncoder(0, layered)
        decoder = FrameBlockDecoder(0, layered.structure, encoder.symbol_size)
        drop = np.random.default_rng(21)
        k = encoder.symbols_per_unit()
        for unit in encoder.units:
            for symbol in encoder.next_symbols(unit, k + 3):
                if drop.random() > 0.3:
                    decoder.ingest(symbol)
        assembled, masks = decoder.assemble()
        blob = assembled.base_y.tobytes() + assembled.base_u.tobytes()
        blob += assembled.base_v.tobytes()
        blob += b"".join(d.tobytes() for d in assembled.deltas)
        blob += b"".join(np.asarray(m).tobytes() for m in masks)
        return blob

    with perf_mode("seed"):
        seed_blob = transmit_and_assemble()
    return transmit_and_assemble() == seed_blob


def _context(quick: bool):
    if quick:
        return build_context(height=144, width=256, dnn_epochs=60, probe_frames=2)
    return build_context()


def bench_emulation(quick: bool, runs: int, frames: int, users: int, jobs: int) -> dict:
    """Wall-clock of a scheduler comparison: serial seed path vs optimized
    batched codec fanned over ``jobs`` workers.  Metrics must be identical."""
    ctx = _context(quick)
    placement = ("arc", 5.0, 60)

    with perf_mode("seed"):
        seed_results, seed_s = time_call(
            lambda: run_scheduler_comparison(
                ctx, users, placement, runs=runs, frames=frames, jobs=1
            )
        )
    optimized_results, optimized_s = time_call(
        lambda: run_scheduler_comparison(
            ctx, users, placement, runs=runs, frames=frames, jobs=jobs
        )
    )
    return {
        "runs": runs,
        "frames": frames,
        "users": users,
        "jobs": jobs,
        "resolution": f"{ctx.height}x{ctx.width}",
        "seed_serial_wall_s": seed_s,
        "optimized_wall_s": optimized_s,
        "seed_runs_per_s": throughput(runs, seed_s),
        "optimized_runs_per_s": throughput(runs, optimized_s),
        "speedup_vs_seed_serial": speedup(seed_s, optimized_s),
        "metrics_identical": seed_results == optimized_results,
    }


# --------------------------------------------------------------------- main


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (~tens of seconds)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool width for the parallel arms (default: REPRO_JOBS or 4)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="emulation runs (default 4, quick 2)"
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="frames per emulation run (default 6, quick 3)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_PERF.json",
        help="report path (default: BENCH_PERF.json at the repo root)",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs
    if jobs is None:
        jobs = effective_jobs(None)
        if jobs <= 1:
            jobs = 4
    else:
        jobs = effective_jobs(jobs)  # <= 0 means "all cores"
    runs = args.runs or (2 if args.quick else 4)
    frames = args.frames or (3 if args.quick else 6)

    if args.quick:
        height, width = 144, 256
        jig_frames, repair, blocks, ssim_repeats = 6, 300, 40, 20
    else:
        height, width = 288, 512
        jig_frames, repair, blocks, ssim_repeats = 24, 2000, 200, 60
    structure = LayerStructure(height=height, width=width)

    print(f"[1/11] jigsaw encode ({height}x{width}, {jig_frames} frames)")
    jigsaw = bench_jigsaw_encode(height, width, jig_frames, jobs)
    print(f"[2/11] fountain encode ({repair} repair symbols)")
    fountain_encode = bench_fountain_encode(structure, repair)
    print(f"[3/11] precode encode + decode scaling ({repair} repair "
          f"symbols, K sweep 32..256)")
    precode = bench_precode(
        structure, repair, fountain_encode["batched_warm_msymbols_per_s"]
    )
    print(f"[4/11] fountain decode ({blocks} blocks)")
    fountain_decode = bench_fountain_decode(structure, blocks)
    print(f"[5/11] ssim ({ssim_repeats} frames)")
    ssim_stage = bench_ssim(height, width, ssim_repeats)
    print("[6/11] decoded-frame byte identity (seed vs optimized codec)")
    frames_identical = check_decoded_frames_identical(structure)
    print(f"[7/11] emulation ({runs}-run scheduler comparison, jobs={jobs})")
    emulation = bench_emulation(args.quick, runs, frames, users=4, jobs=jobs)
    emulation["decoded_frames_identical"] = frames_identical
    scale_counts = USER_COUNTS_QUICK if args.quick else USER_COUNTS_FULL
    print(f"[8/11] emulation scale (cohort sweep to {scale_counts[-1]} users)")
    emulation_scale = bench_emulation_scale(
        _context(args.quick), scale_counts, frames
    )
    sweep_runs = 8 if args.quick else 12
    sweep_frames = 2 if args.quick else 3
    print(f"[9/11] sharded sweep ({sweep_runs} runs on persistent pool, "
          f"jobs={min(jobs, 2)})")
    sweep_shard = bench_sweep_shard(
        _context(args.quick), sweep_runs, sweep_frames,
        shards=sweep_runs, jobs=min(jobs, 2),
    )
    svc_sessions = 4 if args.quick else 8
    svc_receivers = 52 if args.quick else 104
    svc_churn = 40 if args.quick else 80
    print(f"[10/11] service load ({svc_receivers} receivers across "
          f"{svc_sessions} sessions)")
    service_load = bench_service_load(
        _context(args.quick), svc_sessions, svc_receivers, svc_churn,
    )
    ap_runs = 2 if args.quick else 3
    ap_frames = 6 if args.quick else 9
    ap_depths = (0.0, 25.0) if args.quick else (0.0, 10.0, 25.0)
    print(f"[11/11] multi-AP failover (1 vs 2 APs, {ap_runs} runs, "
          f"depths {ap_depths} dB)")
    multi_ap = bench_multi_ap(
        _context(args.quick), ap_depths, runs=ap_runs, frames=ap_frames,
        jobs=jobs,
    )

    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "quick": bool(args.quick),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "stages": {
            "jigsaw_encode": jigsaw,
            "fountain_encode": fountain_encode,
            "precode": precode,
            "fountain_decode": fountain_decode,
            "ssim": ssim_stage,
            "emulation": emulation,
            "emulation_scale": emulation_scale,
            "sweep_shard": sweep_shard,
            "service_load": service_load,
            "multi_ap": multi_ap,
        },
        "acceptance": {
            "fountain_repair_encode_speedup": fountain_encode["speedup_vs_seed"],
            "precode_encode_speedup_vs_dense_batched":
                precode["encode_speedup_vs_dense_batched"],
            "precode_encode_speedup_10x": precode["encode_speedup_10x"],
            "precode_decode_subcubic": precode["decode_subcubic"],
            "precode_roundtrip_identical": precode["roundtrip_identical"],
            "emulation_speedup_vs_seed_serial": emulation["speedup_vs_seed_serial"],
            "emulation_scale_speedup_at_100_users":
                emulation_scale["speedup_at_100_users"],
            "sweep_shard_persistent_vs_fork":
                sweep_shard["persistent_vs_fork_ratio"],
            "metrics_identical": emulation["metrics_identical"],
            "scale_metrics_identical": emulation_scale["metrics_identical"],
            "sweep_merged_identical": sweep_shard["merged_identical"],
            "decoded_frames_identical": frames_identical,
            "service_zero_dropped": service_load["zero_dropped"],
            "service_membership_reflected": service_load["membership_reflected"],
            "service_clean_shutdown": service_load["clean_shutdown"],
            "two_ap_ssim_not_worse_under_blockage":
                multi_ap["two_ap_ssim_not_worse_under_blockage"],
        },
    }
    path = write_bench_report(args.output, report)

    print()
    print(f"jigsaw encode        : {jigsaw['fps_serial']:8.1f} fps serial"
          + (f", {jigsaw['fps_parallel']:.1f} fps x{jobs}"
             if jigsaw["fps_parallel"] else ""))
    print(f"fountain encode      : {fountain_encode['seed_msymbols_per_s']:8.4f} -> "
          f"{fountain_encode['batched_warm_msymbols_per_s']:.4f} Msym/s "
          f"(x{fountain_encode['speedup_vs_seed']:.1f})")
    print(f"precode encode       : {precode['dense_batched_warm_msymbols_per_s']:8.4f} -> "
          f"{precode['encode_msymbols_per_s']:.4f} Msym/s "
          f"(x{precode['encode_speedup_vs_dense_batched']:.1f} vs dense batched)")
    print(f"precode decode ops   : K^{precode['precode_decode_exponent']:.2f} "
          f"vs dense K^{precode['dense_decode_exponent']:.2f} "
          f"(sub-cubic: {precode['decode_subcubic']})")
    print(f"fountain decode      : {fountain_decode['seed_msymbols_per_s']:8.4f} -> "
          f"{fountain_decode['incremental_msymbols_per_s']:.4f} Msym/s "
          f"(x{fountain_decode['speedup_vs_seed']:.1f})")
    print(f"ssim                 : {ssim_stage['frames_per_s_float64']:8.1f} -> "
          f"{ssim_stage['frames_per_s_float32']:.1f} frames/s "
          f"(x{ssim_stage['speedup_vs_float64']:.2f}, "
          f"|delta| {ssim_stage['float32_vs_float64_abs_delta']:.2e})")
    print(f"emulation            : {emulation['seed_serial_wall_s']:8.2f} s -> "
          f"{emulation['optimized_wall_s']:.2f} s "
          f"(x{emulation['speedup_vs_seed_serial']:.2f}, "
          f"{emulation['optimized_runs_per_s']:.2f} runs/s)")
    print(f"emulation scale      : x{emulation_scale['speedup_at_100_users']:.1f} "
          f"at {emulation_scale['pivot_users']} users, "
          f"{emulation_scale['max_users']} users in "
          f"{emulation_scale['run_s_at_max_users']:.2f} s")
    print(f"sharded sweep        : {sweep_shard['points_per_s_persistent']:8.2f} "
          f"points/s persistent "
          f"(x{sweep_shard['persistent_vs_fork_ratio']:.2f} vs fork, "
          f"{sweep_shard['parallel_efficiency']:.2f} efficiency)")
    print(f"service load         : {service_load['control_msgs_per_s']:8.1f} "
          f"msgs/s ({service_load['receivers']} receivers x "
          f"{service_load['sessions']} sessions, "
          f"RTT p95 {service_load['feedback_rtt_p95_s']:.4f} s, "
          f"dropped {service_load['dropped_msgs']})")
    print(f"multi-AP failover    : "
          f"{multi_ap['two_ap_advantage_at_max_depth']:+8.4f} SSIM for 2 APs "
          f"at {max(multi_ap['depths_db']):g} dB blockage "
          f"(not worse: {multi_ap['two_ap_ssim_not_worse_under_blockage']})")
    print(f"metrics identical    : {emulation['metrics_identical']}"
          f" (scale: {emulation_scale['metrics_identical']}, "
          f"sweep: {sweep_shard['merged_identical']})")
    print(f"frames identical     : {frames_identical}")
    print(f"report               : {path}")

    ok = (emulation["metrics_identical"] and frames_identical
          and precode["decode_subcubic"]
          and precode["encode_speedup_10x"]
          and precode["roundtrip_identical"]
          and emulation_scale["metrics_identical"]
          and sweep_shard["merged_identical"]
          and service_load["zero_dropped"]
          and service_load["membership_reflected"]
          and service_load["clean_shutdown"]
          and multi_ap["two_ap_ssim_not_worse_under_blockage"])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
