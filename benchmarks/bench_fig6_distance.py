"""Fig 6: testbed quality vs AP-client distance (2 users, MAS 30).

Paper: SSIM at 3 m = 0.976/0.965/0.963/0.939 (optMC/preMC/optUC/preUC),
at 6 m = 0.966/0.955/0.951/0.924 — graceful degradation with distance,
optimized multicast best throughout.
"""

from repro.emulation import run_beamforming_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import assert_winner, mean_of, print_box_table

PAPER_SSIM = {
    3: {"optimized_multicast": 0.976, "predefined_multicast": 0.965,
        "optimized_unicast": 0.963, "predefined_unicast": 0.939},
    6: {"optimized_multicast": 0.966, "predefined_multicast": 0.955,
        "optimized_unicast": 0.951, "predefined_unicast": 0.924},
}


def test_fig6_distance_sweep(benchmark, ctx):
    def experiment():
        return {
            d: run_beamforming_comparison(
                ctx, 2, ("arc", d, 30), runs=BENCH_RUNS, frames=BENCH_FRAMES
            )
            for d in (3, 6)
        }

    per_distance = run_once(benchmark, experiment)

    for distance, results in per_distance.items():
        print_box_table(f"Fig 6: 2 users at {distance} m, MAS 30", results)
        print(f"paper: { {k: v for k, v in PAPER_SSIM[distance].items()} }")
        print_box_table(f"Fig 6: 2 users at {distance} m (PSNR)", results, "psnr")

    for distance in (3, 6):
        assert_winner(
            per_distance[distance], "optimized_multicast",
            ["predefined_multicast", "optimized_unicast", "predefined_unicast"],
            slack=0.012,
        )
    # Graceful degradation: farther is (weakly) worse.
    assert mean_of(per_distance[6], "optimized_multicast") <= mean_of(
        per_distance[3], "optimized_multicast"
    ) + 0.01
