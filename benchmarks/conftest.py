"""Shared fixtures for the per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper and prints the
same rows/series the paper reports, so the output can be compared side by
side with the publication (see EXPERIMENTS.md for the recorded comparison).

Scale knobs (defaults keep the whole suite tractable; the paper uses 10
testbed / 100 emulation runs):

* ``REPRO_BENCH_RUNS``   — random runs per configuration (default 3)
* ``REPRO_BENCH_FRAMES`` — frames streamed per run (default 9)
* ``REPRO_BENCH_MOBILE_S`` — mobile trace length in seconds (default 4)
"""

from __future__ import annotations

import os

import pytest

from repro.emulation import build_context

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
BENCH_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "9"))
MOBILE_DURATION_S = float(os.environ.get("REPRO_BENCH_MOBILE_S", "4"))


@pytest.fixture(scope="session")
def ctx():
    """The shared experiment context (DNN disk-cached across sessions)."""
    return build_context()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
