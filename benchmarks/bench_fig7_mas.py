"""Fig 7: testbed quality vs maximum angular spacing (2 users at 3 m).

Paper: optimized multicast yields +0.018-0.048 SSIM (3-6 dB PSNR) across all
MAS values; MAS barely affects unicast but does affect multicast.
"""

import numpy as np

from repro.emulation import run_beamforming_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import assert_winner, mean_of, print_box_table


def test_fig7_mas_sweep(benchmark, ctx):
    def experiment():
        return {
            mas: run_beamforming_comparison(
                ctx, 2, ("arc", 3, mas), runs=BENCH_RUNS, frames=BENCH_FRAMES
            )
            for mas in (15, 45, 90)
        }

    per_mas = run_once(benchmark, experiment)

    for mas, results in per_mas.items():
        print_box_table(f"Fig 7: 2 users, 3 m, MAS {mas}", results)

    for mas, results in per_mas.items():
        assert_winner(
            results, "optimized_multicast",
            ["predefined_multicast", "predefined_unicast"],
            slack=0.012,
        )
    # MAS affects multicast much more than unicast.
    multicast_swing = np.ptp(
        [mean_of(per_mas[m], "predefined_multicast") for m in per_mas]
    )
    unicast_swing = np.ptp(
        [mean_of(per_mas[m], "optimized_unicast") for m in per_mas]
    )
    print(f"\nquality swing across MAS: multicast {multicast_swing:.3f}, "
          f"unicast {unicast_swing:.3f}")
    assert multicast_swing >= unicast_swing - 0.01
