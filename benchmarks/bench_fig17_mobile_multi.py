"""Fig 17: trace-driven mobile evaluation, three receivers (two walking).

Paper (mean SSIM gains of Real-time Update over No Update / Robust MPC /
Fast MPC): (a) high RSS +0.034/+0.059/+0.064, (b) low RSS
+0.026/+0.087/+0.248, (c) moving environment +0.006/+0.055/+0.056.
Key shapes: the multicast benefit makes the gains larger than in the
single-user case, and the MPCs collapse at low RSS.
"""

import numpy as np

from repro.emulation import run_mobile_comparison

from conftest import MOBILE_DURATION_S, run_once

REGIMES = ("high", "low", "env")


def test_fig17_mobile_three_users(benchmark, ctx):
    def experiment():
        return {
            regime: run_mobile_comparison(
                ctx, 3, [0, 1], regime, duration_s=MOBILE_DURATION_S, seed=5
            )
            for regime in REGIMES
        }

    per_regime = run_once(benchmark, experiment)

    for regime, series in per_regime.items():
        print(f"\n=== Fig 17({'abc'[REGIMES.index(regime)]}): 3 users, "
              f"regime {regime} ===")
        for approach, values in series.items():
            arr = np.asarray(values)
            print(f"{approach:17} mean={arr.mean():.3f} min={arr.min():.3f} "
                  f"p10={np.percentile(arr, 10):.3f}")

    def mean(regime, approach):
        return float(np.mean(per_regime[regime][approach]))

    # Real-time Update beats No Update under receiver mobility.
    for regime in ("high", "low"):
        assert mean(regime, "realtime_update") >= mean(regime, "no_update") - 0.01

    # At low RSS the MPCs fall clearly behind the layered system.
    for baseline in ("robust_mpc", "fast_mpc"):
        gap = mean("low", "realtime_update") - mean("low", baseline)
        print(f"\nlow-RSS gap over {baseline}: {gap:+.3f} "
              f"(paper: +0.087 / +0.248)")
        assert gap > -0.01, "MPCs must not beat the system at low RSS"

    # Multi-user gains exceed (or match) the magnitude trend of Fig 16.
    high_gap = mean("high", "realtime_update") - mean("high", "fast_mpc")
    print(f"high-RSS gap over fast_mpc: {high_gap:+.3f} (paper: +0.064)")
