#!/usr/bin/env python
"""CI kill/resume determinism check for the sharded sweep scheduler.

Proves the resumable-checkpoint contract end to end, through the real CLI:

1. Run a small sharded campaign uninterrupted → the *reference* results.
2. Run the identical campaign as a subprocess, poll its checkpoint, and
   SIGKILL the process after at least one shard has been committed but
   before the campaign finishes — simulating a pre-empted CI runner or a
   power cut mid-``fsync``.
3. Re-run with ``--resume`` against the survivor checkpoint.
4. The resumed merged results must be **bit-identical** to the reference
   (all floats serialized via ``float.hex()``), and the resumed run must
   have re-executed only the missing shards.

Exit code 0 on success; non-zero with a diagnostic on any divergence.

Usage::

    PYTHONPATH=src python benchmarks/sweep_resume_check.py --workdir /tmp/x
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The campaign under test — small enough for a CI smoke job, sharded
#: finely enough (one run per shard) that a mid-campaign kill always
#: leaves both committed and missing shards behind.
CAMPAIGN = [
    "--quick-context",
    "--users", "2",
    "--runs", "6",
    "--frames", "2",
    "--variant", "base",
    "--variant", "rr:scheduler=round_robin",
    "--shards", "6",
    "--jobs", "2",
]


def _cli(extra: list, env: dict) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro.cli", "sweep", *CAMPAIGN, *extra]
    return subprocess.Popen(
        cmd, env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _shard_lines(checkpoint: Path) -> int:
    """Complete (newline-terminated) shard records committed so far."""
    if not checkpoint.exists():
        return 0
    count = 0
    with open(checkpoint, "rb") as fh:
        for raw in fh:
            if not raw.endswith(b"\n"):
                break  # in-flight append; not committed
            try:
                if json.loads(raw).get("kind") == "shard":
                    count += 1
            except json.JSONDecodeError:
                break
    return count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--workdir", type=Path, default=Path("sweep_resume_work"),
        help="scratch directory for checkpoints and result JSONs",
    )
    parser.add_argument(
        "--kill-after-shards", type=int, default=2,
        help="SIGKILL the victim once this many shards are committed",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="overall per-phase timeout in seconds",
    )
    args = parser.parse_args(argv)

    work = args.workdir
    work.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    ref_json = work / "reference.json"
    resumed_json = work / "resumed.json"
    victim_ck = work / "victim.jsonl"

    print("[1/4] uninterrupted reference campaign")
    proc = _cli(
        ["--checkpoint", str(work / "reference.jsonl"),
         "--result-json", str(ref_json)],
        env,
    )
    out, _ = proc.communicate(timeout=args.timeout)
    if proc.returncode != 0:
        print(out)
        print(f"FAIL: reference campaign exited {proc.returncode}")
        return 1

    print(f"[2/4] victim campaign, SIGKILL after "
          f"{args.kill_after_shards} committed shards")
    victim = _cli(["--checkpoint", str(victim_ck)], env)
    deadline = time.monotonic() + args.timeout
    killed = False
    while time.monotonic() < deadline:
        done = _shard_lines(victim_ck)
        if done >= args.kill_after_shards:
            victim.send_signal(signal.SIGKILL)
            killed = True
            break
        if victim.poll() is not None:
            break  # finished before we could kill it
        time.sleep(0.05)
    victim.wait(timeout=args.timeout)
    committed = _shard_lines(victim_ck)
    if not killed:
        print("FAIL: victim finished before any kill window opened — "
              "grow the campaign or lower --kill-after-shards")
        return 1
    if committed >= 6:
        print("FAIL: all shards committed before the kill landed")
        return 1
    print(f"      killed with {committed}/6 shards committed")

    print("[3/4] resume from the survivor checkpoint")
    proc = _cli(
        ["--checkpoint", str(victim_ck), "--resume",
         "--result-json", str(resumed_json)],
        env,
    )
    out, _ = proc.communicate(timeout=args.timeout)
    if proc.returncode != 0:
        print(out)
        print(f"FAIL: resume exited {proc.returncode}")
        return 1

    print("[4/4] diff resumed results vs uninterrupted reference")
    reference = json.loads(ref_json.read_text())
    resumed = json.loads(resumed_json.read_text())
    if reference != resumed:
        print("FAIL: resumed merged results differ from the reference")
        for name in sorted(set(reference["results"]) | set(resumed["results"])):
            if reference["results"].get(name) != resumed["results"].get(name):
                print(f"  divergent variant: {name}")
        return 1
    print(f"PASS: bit-identical results after SIGKILL at "
          f"{committed}/6 shards (spec {reference.get('spec_hash', '?')[:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
