"""Table 1: video quality model MSE — SVM vs Linear Regression vs DNN.

Paper: SVM 0.0524, Linear Regression 0.0231, DNN 2.43e-5.  The reproduction
checks the *ordering* (DNN best by orders of magnitude, SVM worst) on the
synthetic corpus; absolute MSEs differ with the content.
"""

from repro.quality import train_quality_models
from repro.video.dataset import generate_dataset
from repro.video.synthetic import make_standard_videos

from conftest import run_once

PAPER_MSE = {"svm": 5.24e-2, "linear_regression": 2.31e-2, "dnn": 2.43e-5}


def test_table1_quality_model_mse(benchmark):
    def experiment():
        videos = make_standard_videos(num_frames=16, seed=7)
        dataset = generate_dataset(
            videos, frames_per_video=3, samples_per_frame=32, seed=0
        )
        return train_quality_models(
            dataset=dataset, dnn_epochs=500, dnn_batch_size=64, seed=0
        )

    trained = run_once(benchmark, experiment)

    print("\n=== Table 1: quality model test MSE ===")
    print(f"{'method':20} {'measured':>12} {'paper':>12}")
    for name in ("svm", "linear_regression", "dnn"):
        print(
            f"{name:20} {trained.test_mse[name]:>12.3e} {PAPER_MSE[name]:>12.3e}"
        )
    mse = trained.test_mse
    assert mse["dnn"] < mse["linear_regression"] < mse["svm"], (
        "Table 1 ordering (DNN < LinReg < SVM) not reproduced"
    )
