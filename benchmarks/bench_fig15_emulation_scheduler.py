"""Fig 15: emulation — optimized scheduler vs round robin, 2-8 users.

Setup: users 8-16 m, MAS 120, optimized multicast beamforming for both.
Paper: no difference at 2 users; optimized wins by 0.029/0.030/0.052 SSIM at
4/6/8 users — the importance of scheduling grows with the user count.
"""

from repro.emulation import run_scheduler_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import mean_of, print_box_table


def test_fig15_scheduler_emulation(benchmark, ctx):
    def experiment():
        return {
            n: run_scheduler_comparison(
                ctx, n, ("range", 8, 16, 120),
                runs=BENCH_RUNS, frames=BENCH_FRAMES,
            )
            for n in (2, 4, 6, 8)
        }

    per_users = run_once(benchmark, experiment)

    gains = {}
    for n, results in per_users.items():
        print_box_table(f"Fig 15: scheduler, {n} users, 8-16 m", results)
        gains[n] = mean_of(results, "optimized") - mean_of(results, "round_robin")
    print("\noptimized - round_robin: "
          + ", ".join(f"{n}u: {g:+.3f}" for n, g in gains.items())
          + " (paper: ~0 at 2u, +0.029/+0.030/+0.052 at 4/6/8u)")

    for n in (4, 6, 8):
        assert gains[n] > 0.005, f"optimized scheduler must win at {n} users"
    assert gains[8] >= gains[2] - 0.01, "scheduling importance grows with users"
