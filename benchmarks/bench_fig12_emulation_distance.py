"""Fig 12: emulation — distance sweep (4/8/12/16 m) x number of users.

Setup: optimized multicast beamforming, MAS 120 degrees.
Paper: quality fluctuates only mildly with distance; the spread across user
counts grows with distance (0.01 at 4 m up to 0.03 at 16 m) thanks to
layered coding + schedule optimization.
"""

import numpy as np

from repro.emulation import run_beamforming_comparison
from repro.types import BeamformingScheme

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once


def test_fig12_distance_x_users(benchmark, ctx):
    def experiment():
        table = {}
        for distance in (4, 8, 12, 16):
            row = {}
            for n in (2, 4, 6):
                results = run_beamforming_comparison(
                    ctx, n, ("arc", distance, 120),
                    schemes=[BeamformingScheme.OPTIMIZED_MULTICAST],
                    runs=BENCH_RUNS, frames=BENCH_FRAMES,
                )
                row[n] = float(np.mean(results["optimized_multicast"]["ssim"]))
            table[distance] = row
        return table

    table = run_once(benchmark, experiment)

    print("\n=== Fig 12: mean SSIM, optimized multicast, MAS 120 ===")
    users = sorted(next(iter(table.values())))
    print(f"{'distance':>9} " + " ".join(f"{n:>7}u" for n in users))
    for distance, row in table.items():
        print(f"{distance:>8}m " + " ".join(f"{row[n]:>8.3f}" for n in users))

    spreads = {d: max(row.values()) - min(row.values()) for d, row in table.items()}
    print("\nspread across user counts: "
          + ", ".join(f"{d}m: {s:.3f}" for d, s in spreads.items())
          + " (paper: 0.01 -> 0.03 growing with distance)")
    # Quality must stay usable everywhere (graceful degradation).
    for distance, row in table.items():
        for n, value in row.items():
            assert value > 0.6, f"{n} users at {distance} m collapsed: {value}"
    # Spread at the farthest distance should be at least that at the nearest.
    assert spreads[16] >= spreads[4] - 0.02
