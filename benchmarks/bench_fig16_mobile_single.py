"""Fig 16: trace-driven mobile evaluation, single receiver.

Three regimes on identical replayed CSI traces:
(a) receiver walking under high RSS, (b) walking under low RSS,
(c) static receiver with people crossing the beams.

Paper (mean SSIM gains of Real-time Update): (a) +0.008 / +0.018 / +0.016,
(b) +0.008 / +0.021 / +0.068, (c) +0.004 / +0.017 / +0.017 over
No Update / Robust MPC / Fast MPC respectively.  Key shapes: Real-time
Update is best everywhere; the MPCs degrade hardest at low RSS.
"""

import numpy as np

from repro.emulation import run_mobile_comparison

from conftest import MOBILE_DURATION_S, run_once

REGIMES = ("high", "low", "env")


def test_fig16_mobile_single_user(benchmark, ctx):
    def experiment():
        return {
            regime: run_mobile_comparison(
                ctx, 1, [0], regime, duration_s=MOBILE_DURATION_S, seed=5
            )
            for regime in REGIMES
        }

    per_regime = run_once(benchmark, experiment)

    for regime, series in per_regime.items():
        print(f"\n=== Fig 16({'abc'[REGIMES.index(regime)]}): 1 user, "
              f"regime {regime} ===")
        for approach, values in series.items():
            arr = np.asarray(values)
            print(f"{approach:17} mean={arr.mean():.3f} min={arr.min():.3f} "
                  f"p10={np.percentile(arr, 10):.3f}")

    def mean(regime, approach):
        return float(np.mean(per_regime[regime][approach]))

    # Real-time Update wins in every regime.
    for regime in REGIMES:
        for baseline in ("no_update", "robust_mpc", "fast_mpc"):
            assert mean(regime, "realtime_update") >= mean(regime, baseline) - 0.02, (
                f"{regime}: realtime_update lost to {baseline}"
            )
    # MPC degradation is worst at low RSS (the exact magnitude depends on
    # how many blockage outages the trace seed draws).
    mpc_drop = mean("high", "fast_mpc") - mean("low", "fast_mpc")
    print(f"\nFast MPC high->low degradation: {mpc_drop:+.3f} "
          f"(paper: large at low RSS)")
    assert mpc_drop >= -0.01
