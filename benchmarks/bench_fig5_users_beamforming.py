"""Fig 5: testbed SSIM/PSNR vs number of users x beamforming scheme.

Setup: users at 3 m, MAS 60 degrees, HR video, 1-3 users.
Paper: optimized multicast best everywhere; its advantage grows with users
(SSIM +0.012/+0.016/+0.038 over the alternatives at 2 users,
+0.021/+0.023/+0.045 at 3 users; PSNR gains 2.5-5.6 dB).
"""

from repro.emulation import run_beamforming_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import assert_winner, mean_of, print_box_table


def test_fig5_users_x_beamforming(benchmark, ctx):
    def experiment():
        return {
            n: run_beamforming_comparison(
                ctx, n, ("arc", 3, 60), runs=BENCH_RUNS, frames=BENCH_FRAMES
            )
            for n in (1, 2, 3)
        }

    per_users = run_once(benchmark, experiment)

    for n, results in per_users.items():
        print_box_table(f"Fig 5: {n} user(s), 3 m, MAS 60", results, "ssim")
        print_box_table(f"Fig 5: {n} user(s), 3 m, MAS 60", results, "psnr")

    for n in (2, 3):
        assert_winner(
            per_users[n], "optimized_multicast",
            ["predefined_multicast", "optimized_unicast", "predefined_unicast"],
            slack=0.01,
        )
    # The multicast benefit must grow with the number of users.
    gain_2 = mean_of(per_users[2], "optimized_multicast") - mean_of(
        per_users[2], "predefined_unicast"
    )
    gain_3 = mean_of(per_users[3], "optimized_multicast") - mean_of(
        per_users[3], "predefined_unicast"
    )
    assert gain_3 >= gain_2 - 0.02, "multicast benefit should grow with users"
