"""Ablations of the reproduction's own design choices (DESIGN.md Sec 4).

Not a paper figure — these quantify the knobs the reproduction had to pick:

* group-pruning threshold (Sec 2.4 "omit groups below a threshold"),
* the lambda traffic penalty of Problem 1,
* the 2 dB MCS selection backoff,
* max-min beam refinement vs the paper's plain SVD heuristic,
* firmware sector tracking inside the No-Update baseline.
"""

import numpy as np

from repro.beamforming.multicast import (
    max_min_gain,
    max_min_multicast_beam,
    svd_multicast_beam,
)
from repro.core import MulticastStreamer
from repro.types import AdaptationPolicy

from conftest import BENCH_FRAMES, run_once


def _stream(ctx, trace, frames=BENCH_FRAMES, seed=71, **overrides):
    config = ctx.config(**overrides)
    streamer = MulticastStreamer(
        config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed
    )
    return streamer.stream_trace(trace, num_frames=frames).mean_ssim


def test_ablation_scheduler_knobs(benchmark, ctx):
    def experiment():
        positions = ctx.scenario.place_arc(3, 6.0, 60, seed=61)
        trace = ctx.scenario.static_trace(positions, duration_s=1.0, seed=62)
        rows = {}
        rows["default"] = _stream(ctx, trace)
        rows["no_group_pruning"] = _stream(ctx, trace, min_group_rate_mbps=0.0)
        rows["harsh_pruning_1600"] = _stream(ctx, trace, min_group_rate_mbps=1600.0)
        rows["lambda_x1000"] = _stream(
            ctx, trace, traffic_penalty_per_byte=1e-6
        )
        rows["no_mcs_backoff"] = _stream(ctx, trace, mcs_backoff_db=0.0)
        rows["backoff_6db"] = _stream(ctx, trace, mcs_backoff_db=6.0)
        rows["no_retransmit_reserve"] = _stream(ctx, trace, retransmit_reserve=0.0)
        return rows

    rows = run_once(benchmark, experiment)
    print("\n=== Ablation: scheduler/link knobs (3 users, 6 m) ===")
    for name, value in rows.items():
        print(f"{name:24} mean SSIM {value:.3f}")
    # The defaults should be competitive with every single-knob variant.
    for name, value in rows.items():
        assert rows["default"] >= value - 0.05, f"default lost badly to {name}"


def test_ablation_maxmin_vs_plain_svd_beam(benchmark, ctx):
    def experiment():
        rng = np.random.default_rng(63)
        array = ctx.scenario.array
        improvements = []
        for _ in range(30):
            positions = ctx.scenario.place_arc(
                3, float(rng.uniform(3, 12)), float(rng.uniform(30, 120)),
                seed=int(rng.integers(0, 2**31)),
            )
            channels = [
                ctx.scenario.channel_model.channel_vector(p, rng)
                for p in positions
            ]
            refined = max_min_gain(max_min_multicast_beam(array, channels), channels)
            plain = max_min_gain(svd_multicast_beam(array, channels), channels)
            improvements.append(10 * np.log10(refined / max(plain, 1e-30)))
        return np.asarray(improvements)

    gains_db = run_once(benchmark, experiment)
    print("\n=== Ablation: max-min refinement vs plain SVD (min-RSS gain) ===")
    print(f"median {np.median(gains_db):+.1f} dB, "
          f"p10 {np.percentile(gains_db, 10):+.1f} dB, "
          f"p90 {np.percentile(gains_db, 90):+.1f} dB over 30 placements")
    assert np.median(gains_db) >= 0.0, "refinement must not lose on median"


def test_ablation_no_update_sector_tracking(benchmark, ctx):
    def experiment():
        totals = {"realtime": 0.0, "no_update_tracked": 0.0,
                  "no_update_frozen": 0.0}
        seeds = (64, 65, 66)
        for seed in seeds:
            trace = ctx.scenario.mobile_receiver_trace(
                2, [0], duration_s=2.0, rss_regime="high", seed=seed
            )
            totals["no_update_tracked"] += _stream(
                ctx, trace, frames=30,
                adaptation=AdaptationPolicy.NO_UPDATE,
                no_update_beam_tracking=True,
            )
            totals["no_update_frozen"] += _stream(
                ctx, trace, frames=30,
                adaptation=AdaptationPolicy.NO_UPDATE,
                no_update_beam_tracking=False,
            )
            totals["realtime"] += _stream(ctx, trace, frames=30)
        return {name: value / len(seeds) for name, value in totals.items()}

    rows = run_once(benchmark, experiment)
    print("\n=== Ablation: No-Update beam handling (walking receiver, "
          "3 traces) ===")
    for name, value in rows.items():
        print(f"{name:20} mean SSIM {value:.3f}")
    # Single traces are noisy (a sector switch can thrash on stale CSI);
    # on average real-time adaptation >= tracked >= frozen.
    assert rows["realtime"] >= rows["no_update_tracked"] - 0.02
    assert rows["no_update_tracked"] >= rows["no_update_frozen"] - 0.04
