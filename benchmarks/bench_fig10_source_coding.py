"""Fig 10: fountain source coding on vs off (testbed: 3 users, 3 m, MAS 60).

Paper: source coding wins by 0.32 SSIM / 9.5 dB PSNR — without it,
retransmission to multiple receivers is inefficient and overlapping
multicast groups deliver redundant segments; variance also grows.
"""

from repro.emulation import run_ablation

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import mean_of, print_box_table


def test_fig10_source_coding(benchmark, ctx):
    def experiment():
        return run_ablation(
            ctx, "source_coding", 3, ("arc", 3, 60),
            runs=BENCH_RUNS, frames=BENCH_FRAMES,
        )

    results = run_once(benchmark, experiment)

    print_box_table("Fig 10: source coding (3 users, 3 m, MAS 60)", results)
    print_box_table("Fig 10 (PSNR)", results, "psnr")

    with_sc = mean_of(results, "with_source_coding")
    without_sc = mean_of(results, "without_source_coding")
    psnr_gain = mean_of(results, "with_source_coding", "psnr") - mean_of(
        results, "without_source_coding", "psnr"
    )
    print(f"\nwith - without: {with_sc - without_sc:+.3f} SSIM, "
          f"{psnr_gain:+.1f} dB PSNR (paper: +0.32 SSIM, +9.5 dB)")
    assert with_sc - without_sc > 0.03, "source coding must win clearly"
    assert psnr_gain > 1.0
