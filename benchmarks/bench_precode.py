"""Precode codec benchmark stage: encode throughput and decode-cost scaling.

Measures the RaptorQ-style precode against the dense batched path on the
same coding-unit shape as the ``fountain_encode`` stage, and sweeps decode
elimination effort over a K ladder to certify the inactivation decoder's
sub-cubic scaling (full Gaussian elimination on the instrumented seed path
is the control).  The two headline outputs feed ``perf_gate``:

* ``encode_msymbols_per_s`` — a gated throughput metric, and
* ``decode_subcubic`` — a REQUIRED_FLAG boolean (growth-exponent fit of
  elimination element-ops must stay below 2.0 while the dense control
  stays above 2.3).
"""

from __future__ import annotations

import numpy as np

from repro.fountain.block import symbol_size_for
from repro.fountain.precode import Precode, PrecodeDecoder, PrecodeEncoder
from repro.fountain.raptor import FountainDecoder, FountainEncoder
from repro.obs import observed
from repro.perf import perf_mode, throughput, time_call, time_call_best
from repro.video.jigsaw import LayerStructure

#: Decode-cost sweep ladder (K values) and per-decode symbol overhead.
SCALING_KS = (32, 64, 128, 256)
SCALING_OVERHEAD = 8
SCALING_SYMBOL_BYTES = 8

#: Sub-cubic certification bounds on the log-log growth exponent.
PRECODE_EXPONENT_MAX = 2.0
DENSE_EXPONENT_MIN = 2.3


def _payload(seed: int, nbytes: int) -> bytes:
    return (
        np.random.default_rng(seed)
        .integers(0, 256, size=nbytes, dtype=np.uint8)
        .tobytes()
    )


def _growth_exponent(ks, ops) -> float:
    slope, _ = np.polyfit(np.log(np.asarray(ks, dtype=float)),
                          np.log(np.asarray(ops, dtype=float)), 1)
    return float(slope)


def _precode_decode_ops(k: int) -> int:
    """Elimination element-ops for one all-repair inactivation decode."""
    data = _payload(k, k * SCALING_SYMBOL_BYTES)
    encoder = PrecodeEncoder(0, data, SCALING_SYMBOL_BYTES)
    decoder = PrecodeDecoder(0, len(data), SCALING_SYMBOL_BYTES)
    for symbol in encoder.symbols(k, k + SCALING_OVERHEAD):
        decoder.add_symbol(symbol)
    assert decoder.decode() == data
    assert decoder.last_stats is not None
    return int(decoder.last_stats.elem_ops)


def _dense_decode_ops(k: int) -> int:
    """Control: gf_solve element-ops for one seed-path dense decode."""
    data = _payload(k, k * SCALING_SYMBOL_BYTES)
    with perf_mode("seed"):
        with observed("counters") as registry:
            encoder = FountainEncoder(0, data, SCALING_SYMBOL_BYTES)
            decoder = FountainDecoder(0, len(data), SCALING_SYMBOL_BYTES)
            for symbol in encoder.symbols(k, k + SCALING_OVERHEAD):
                decoder.add_symbol(symbol)
            assert decoder.decode() == data
    return int(registry.counters()["fountain.gf.solve_elem_ops"])


def _roundtrip_identical(structure: LayerStructure) -> bool:
    """Precode sessions must reproduce payloads and the systematic wire."""
    symbol_size = symbol_size_for(structure)
    data = _payload(17, structure.sublayer_nbytes)
    dense = FountainEncoder(3_000_003, data, symbol_size)
    pre = PrecodeEncoder(3_000_003, data, symbol_size)
    k = pre.num_source_symbols
    for sid in range(k):
        if pre.symbol(sid).payload != dense.symbol(sid).payload:
            return False
    decoder = PrecodeDecoder(3_000_003, len(data), symbol_size)
    for symbol in pre.symbols(k, k + 4):  # all-repair reception
        decoder.add_symbol(symbol)
    return decoder.is_decoded and decoder.decode() == data


def bench_precode(
    structure: LayerStructure,
    repair_symbols: int,
    dense_warm_msymbols_per_s: float,
) -> dict:
    """Precode encode throughput plus the decode-cost scaling sweep.

    ``dense_warm_msymbols_per_s`` is the ``fountain_encode`` stage's warm
    batched rate from the same process, the reference for the >=10x
    speedup acceptance flag.
    """
    symbol_size = symbol_size_for(structure)
    data = _payload(11, structure.sublayer_nbytes)

    Precode.clear_cache()
    encoder = PrecodeEncoder(1_000_001, data, symbol_size)
    k = encoder.num_source_symbols
    # Cold: first batch pays intermediate-block construction and LT row
    # derivation (both cached per K for the life of the process).
    _, cold_s = time_call(lambda: encoder.payload_block(k, repair_symbols))
    # Warm: the steady-state rate a live session sees; best-of-5 keeps the
    # gated metric from flapping on scheduler noise.
    _, warm_s = time_call_best(
        lambda: encoder.payload_block(k, repair_symbols), repeats=5
    )
    warm_rate = throughput(repair_symbols, warm_s) / 1e6

    precode_ops = [_precode_decode_ops(kk) for kk in SCALING_KS]
    dense_ops = [_dense_decode_ops(kk) for kk in SCALING_KS]
    precode_exponent = _growth_exponent(SCALING_KS, precode_ops)
    dense_exponent = _growth_exponent(SCALING_KS, dense_ops)
    decode_subcubic = (
        precode_exponent < PRECODE_EXPONENT_MAX
        and dense_exponent > DENSE_EXPONENT_MIN
    )

    encode_speedup = (
        warm_rate / dense_warm_msymbols_per_s
        if dense_warm_msymbols_per_s
        else float("inf")
    )
    return {
        "k": k,
        "symbol_bytes": symbol_size,
        "repair_symbols": repair_symbols,
        "encode_cold_msymbols_per_s": throughput(repair_symbols, cold_s) / 1e6,
        "encode_msymbols_per_s": warm_rate,
        "dense_batched_warm_msymbols_per_s": dense_warm_msymbols_per_s,
        "encode_speedup_vs_dense_batched": encode_speedup,
        "encode_speedup_10x": encode_speedup >= 10.0,
        "scaling_ks": list(SCALING_KS),
        "scaling_overhead": SCALING_OVERHEAD,
        "precode_decode_elem_ops": precode_ops,
        "dense_decode_elem_ops": dense_ops,
        "precode_decode_exponent": precode_exponent,
        "dense_decode_exponent": dense_exponent,
        "decode_subcubic": decode_subcubic,
        "roundtrip_identical": _roundtrip_identical(structure),
    }
