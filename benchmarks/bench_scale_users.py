#!/usr/bin/env python
"""User-count scaling benchmark for the vectorized cohort transport core.

Sweeps full emulation runs from a handful of receivers up to 1,000+ and
reports the users-vs-runs/s curve of the optimized (cohort) path, plus a
seed-vs-optimized comparison at a pivot user count that defends the
tentpole speedup.  Both paths are bit-compatible; the harness asserts the
per-(frame, user) outcome statistics are identical before reporting any
speedup.

The sweep uses the predefined-multicast scheme with the round-robin
scheduler and ``max_group_size=2`` so beam planning stays linear in the
user count and the measurement isolates the transport/scoring core the
cohort arrays vectorize — the planner is shared verbatim by both paths and
would otherwise dominate the wall clock at large N.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_users.py           # full
    PYTHONPATH=src python benchmarks/bench_scale_users.py --quick   # CI smoke

The report (users-vs-runs/s curve and the pivot comparison) is written as
JSON — ``bench_scale_users.json`` by default — for the nightly-CI artifact
upload; the same stage dict is embedded as ``emulation_scale`` in
``BENCH_PERF.json`` by ``bench_perf_pipeline.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import MulticastStreamer
from repro.emulation import ExperimentContext, build_context, trace_for_placement
from repro.perf import perf_mode, throughput, time_call, write_bench_report
from repro.types import BeamformingScheme, SchedulerKind

#: Config overrides shared by every scale point (see module docstring).
SCALE_OVERRIDES = dict(
    max_group_size=2,
    scheme=BeamformingScheme.PREDEFINED_MULTICAST,
    scheduler=SchedulerKind.ROUND_ROBIN,
)

PLACEMENT = ("arc", 5.0, 60)
USER_COUNTS_FULL = (4, 16, 64, 100, 250, 1000)
USER_COUNTS_QUICK = (4, 16, 100, 1000)
PIVOT_USERS = 100
IDENTITY_USERS = 8


def _outcome_digest(outcome) -> list:
    """Bit-exact digest of per-(frame, user) stats (hex floats)."""
    return [
        (
            s.frame_index,
            s.user_id,
            float(s.ssim).hex(),
            float(s.psnr_db).hex(),
            tuple(float(b).hex() for b in s.bytes_received_per_layer),
            bool(s.deadline_met),
        )
        for s in outcome.stats
    ]


def scale_run(
    ctx: ExperimentContext,
    num_users: int,
    frames: int,
    mode: str = "optimized",
    run_seed: int = 0,
):
    """One timed emulation run at ``num_users`` receivers.

    Returns ``(run_wall_s, setup_wall_s, outcome)``.  Trace construction
    (channel snapshots for every receiver) is reported separately: it is
    world setup shared identically by both paths, not part of the
    streaming loop the cohort arrays optimize.
    """
    trace, setup_s = time_call(
        lambda: trace_for_placement(ctx, num_users, PLACEMENT, run_seed)
    )
    config = ctx.config(**SCALE_OVERRIDES)
    streamer = MulticastStreamer(
        config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=run_seed
    )
    with perf_mode(mode):
        outcome, run_s = time_call(lambda: streamer.session(trace).run(frames))
    return run_s, setup_s, outcome


def bench_emulation_scale(
    ctx: ExperimentContext,
    user_counts=USER_COUNTS_FULL,
    frames: int = 6,
    pivot_users: int = PIVOT_USERS,
    identity_users: int = IDENTITY_USERS,
) -> dict:
    """The ``emulation_scale`` benchmark stage.

    Sweeps the optimized path over ``user_counts``, times the seed path at
    ``pivot_users`` for the headline speedup, and checks outcome
    bit-identity across the paths at ``identity_users``.
    """
    curve = []
    pivot_optimized_s = None
    for num_users in user_counts:
        run_s, setup_s, _ = scale_run(ctx, num_users, frames)
        curve.append({
            "users": num_users,
            "run_s": run_s,
            "setup_s": setup_s,
            "runs_per_s": throughput(1, run_s),
        })
        print(f"    {num_users:5d} users: {run_s:7.2f} s/run "
              f"({throughput(1, run_s):6.2f} runs/s, setup {setup_s:.2f} s)",
              flush=True)
        if num_users == pivot_users:
            pivot_optimized_s = run_s

    if pivot_optimized_s is None:
        pivot_optimized_s, _, _ = scale_run(ctx, pivot_users, frames)
    seed_pivot_s, _, _ = scale_run(ctx, pivot_users, frames, mode="seed")
    print(f"    seed path at {pivot_users} users: {seed_pivot_s:.2f} s/run "
          f"(x{seed_pivot_s / pivot_optimized_s:.1f} speedup)", flush=True)

    _, _, seed_outcome = scale_run(ctx, identity_users, frames, mode="seed")
    _, _, opt_outcome = scale_run(ctx, identity_users, frames)
    identical = _outcome_digest(seed_outcome) == _outcome_digest(opt_outcome)

    max_point = curve[-1]
    return {
        "frames": frames,
        "resolution": f"{ctx.height}x{ctx.width}",
        "placement": "arc 5.0 m, MAS 60 deg",
        "scheme": SCALE_OVERRIDES["scheme"].value,
        "scheduler": SCALE_OVERRIDES["scheduler"].value,
        "max_group_size": SCALE_OVERRIDES["max_group_size"],
        "curve": curve,
        "pivot_users": pivot_users,
        "seed_run_s_at_pivot": seed_pivot_s,
        "optimized_run_s_at_pivot": pivot_optimized_s,
        "speedup_at_100_users": seed_pivot_s / pivot_optimized_s,
        "optimized_runs_per_s_at_100_users": throughput(1, pivot_optimized_s),
        "max_users": max_point["users"],
        "run_s_at_max_users": max_point["run_s"],
        "metrics_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced resolution and fewer sweep points for CI smoke runs",
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="frames per run (default 6, quick 3)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "bench_scale_users.json",
        help="JSON report path (default: bench_scale_users.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        ctx = build_context(height=144, width=256, dnn_epochs=60, probe_frames=2)
        user_counts = USER_COUNTS_QUICK
    else:
        ctx = build_context()
        user_counts = USER_COUNTS_FULL
    frames = args.frames or (3 if args.quick else 6)

    print(f"emulation scale sweep ({ctx.height}x{ctx.width}, {frames} frames)")
    stage = bench_emulation_scale(ctx, user_counts, frames)

    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "quick": bool(args.quick),
        "stages": {"emulation_scale": stage},
    }
    path = write_bench_report(args.output, report)

    print()
    print(f"speedup at {stage['pivot_users']} users : "
          f"x{stage['speedup_at_100_users']:.1f} "
          f"({stage['seed_run_s_at_pivot']:.2f} s -> "
          f"{stage['optimized_run_s_at_pivot']:.2f} s)")
    print(f"{stage['max_users']} users               : "
          f"{stage['run_s_at_max_users']:.2f} s per run")
    print(f"metrics identical        : {stage['metrics_identical']}")
    print(f"report                   : {path}")
    return 0 if stage["metrics_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
