"""Fig 2: Raptor encode/decode time vs symbol size.

Paper: both times first decrease then increase with symbol size; 6000 B sits
near the minimum, which is why the system uses it.  We sweep symbol size on
a fixed ~120 KB coding unit (the paper's 4K sublayer size) and report both
the absolute times and time per useful byte (padding waste makes very large
symbols inefficient).
"""

import time

import numpy as np

from repro.fountain import FountainDecoder, FountainEncoder

from conftest import run_once

UNIT_BYTES = 120_000
SYMBOL_SIZES = (500, 1500, 3000, 6000, 12000, 30000, 60000)


def test_fig2_symbol_size_sweep(benchmark):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=UNIT_BYTES, dtype=np.uint8).tobytes()

    def experiment():
        rows = []
        for symbol_size in SYMBOL_SIZES:
            encoder = FountainEncoder(1, data, symbol_size)
            k = encoder.num_source_symbols
            start = time.perf_counter()
            repair = encoder.symbols(k, max(2, k // 2))
            encode_s = time.perf_counter() - start

            decoder = FountainDecoder(1, len(data), symbol_size)
            mixture = encoder.symbols(0, k - max(1, k // 2)) + repair
            start = time.perf_counter()
            for symbol in mixture:
                decoder.add_symbol(symbol)
            decoded = decoder.is_decoded
            decode_s = time.perf_counter() - start
            rows.append((symbol_size, k, encode_s, decode_s, decoded))
        return rows

    rows = run_once(benchmark, experiment)

    print("\n=== Fig 2: encode/decode time vs symbol size (120 KB unit) ===")
    print(f"{'symbol (B)':>10} {'K':>5} {'encode (ms)':>12} "
          f"{'decode (ms)':>12} {'decoded':>8}")
    for symbol_size, k, encode_s, decode_s, decoded in rows:
        print(f"{symbol_size:>10} {k:>5} {encode_s * 1e3:>12.2f} "
              f"{decode_s * 1e3:>12.2f} {str(decoded):>8}")

    by_size = {r[0]: r for r in rows}
    # The paper's operating point must be fast: 6000 B far cheaper than the
    # small-symbol end of the sweep.
    assert by_size[6000][2] < by_size[500][2] / 3
    assert by_size[6000][3] < by_size[500][3] / 3
    assert all(r[4] for r in rows)
