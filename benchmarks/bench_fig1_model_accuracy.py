"""Fig 1(b): DNN estimation accuracy per layer (mean / min / max).

Paper: high estimation accuracy across all layers (error bars close to 1).
"""

from repro.quality import train_quality_models
from repro.video.dataset import generate_dataset
from repro.video.synthetic import make_standard_videos

from conftest import run_once


def test_fig1_per_layer_accuracy(benchmark):
    def experiment():
        videos = make_standard_videos(num_frames=16, seed=7)
        dataset = generate_dataset(
            videos, frames_per_video=3, samples_per_frame=32, seed=0
        )
        return train_quality_models(
            dataset=dataset, dnn_epochs=500, dnn_batch_size=64, seed=0
        )

    trained = run_once(benchmark, experiment)

    print("\n=== Fig 1(b): DNN accuracy (1 - |error|) per layer ===")
    print(f"{'layer':>6} {'mean':>8} {'min':>8} {'max':>8}")
    means = []
    for layer in range(4):
        acc = trained.per_layer_accuracy(layer)
        print(f"{layer:>6} {acc['mean']:>8.3f} {acc['min']:>8.3f} {acc['max']:>8.3f}")
        if acc["mean"] == acc["mean"]:  # not NaN
            means.append(acc["mean"])
    assert means and min(means) > 0.85, "per-layer accuracy too low vs Fig 1(b)"
