"""Fig 14: emulation — source coding on/off for 4/6/8 users (8-16 m).

Paper: source coding removes cross-group redundancy, improving SSIM by
0.005-0.025 in emulation (larger gains in the lossier testbed, Fig 10).
"""

from repro.emulation import run_ablation

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import mean_of, print_box_table


def test_fig14_source_coding_emulation(benchmark, ctx):
    def experiment():
        return {
            n: run_ablation(
                ctx, "source_coding", n, ("range", 8, 16, 120),
                runs=BENCH_RUNS, frames=BENCH_FRAMES,
            )
            for n in (4, 6, 8)
        }

    per_users = run_once(benchmark, experiment)

    gains = {}
    for n, results in per_users.items():
        print_box_table(f"Fig 14: source coding, {n} users, 8-16 m", results)
        gains[n] = mean_of(results, "with_source_coding") - mean_of(
            results, "without_source_coding"
        )
    print("\nSSIM gain from source coding: "
          + ", ".join(f"{n}u: {g:+.3f}" for n, g in gains.items())
          + " (paper: +0.005 to +0.025)")
    for n, gain in gains.items():
        assert gain > 0.0, f"source coding must help at {n} users"
