"""Table 2: MCS / sensitivity / UDP throughput over the emulated link.

The table itself is the paper's measurement (an *input* to the system); this
benchmark verifies the emulated link realises it: an iperf3-style UDP flood
at each MCS, at an RSS right at that MCS's operating point, achieves the
table's goodput (less residual PER), and unsupported MCS indices carry no
data.
"""

import numpy as np

from repro.phy.mcs import MCS_TABLE, highest_supported_mcs
from repro.transport.link import packet_error_rate

from conftest import run_once


def test_table2_mcs_goodput(benchmark):
    def experiment():
        rows = []
        for entry in MCS_TABLE:
            rss = entry.sensitivity_dbm + 3.0  # operate with 3 dB margin
            selected = highest_supported_mcs(rss)
            if not entry.supported:
                rows.append((entry.index, entry.sensitivity_dbm, None, None))
                continue
            per = packet_error_rate(rss - entry.sensitivity_dbm)
            goodput = entry.udp_throughput_mbps * (1.0 - per)
            rows.append((entry.index, entry.sensitivity_dbm,
                         entry.udp_throughput_mbps, goodput))
            # The RSS->MCS mapping must select an MCS at least this fast.
            assert selected is not None
            assert selected.udp_throughput_mbps >= entry.udp_throughput_mbps
        return rows

    rows = run_once(benchmark, experiment)

    print("\n=== Table 2: MCS, sensitivity, UDP throughput ===")
    print(f"{'MCS':>5} {'sens (dBm)':>11} {'paper (Mbps)':>13} {'emulated':>10}")
    for index, sens, paper, emulated in rows:
        paper_s = f"{paper:.0f}" if paper else "x"
        emu_s = f"{emulated:.0f}" if emulated else "x"
        print(f"{index:>5} {sens:>11.0f} {paper_s:>13} {emu_s:>10}")
    supported = [r for r in rows if r[2] is not None]
    measured = np.array([r[3] for r in supported])
    nominal = np.array([r[2] for r in supported])
    assert np.all(measured > 0.98 * nominal), "emulated goodput off Table 2"
