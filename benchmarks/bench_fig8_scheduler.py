"""Fig 8: optimized scheduler vs round robin (testbed; 2 and 3 users).

Paper: identical for 2 users (a single multicast group), optimized wins by
+0.03 SSIM / +3.2 dB PSNR for 3 users.
"""

from repro.emulation import run_scheduler_comparison

from conftest import BENCH_FRAMES, BENCH_RUNS, run_once
from figutil import mean_of, print_box_table


def test_fig8_scheduler_vs_round_robin(benchmark, ctx):
    def experiment():
        return {
            n: run_scheduler_comparison(
                ctx, n, ("arc", 3, 60), runs=BENCH_RUNS, frames=BENCH_FRAMES
            )
            for n in (2, 3)
        }

    per_users = run_once(benchmark, experiment)

    for n, results in per_users.items():
        print_box_table(f"Fig 8: scheduler comparison, {n} users, 3 m", results)
        print_box_table(f"Fig 8: {n} users (PSNR)", results, "psnr")

    # 3 users: the optimized allocation must clearly beat round robin.
    gain_3 = mean_of(per_users[3], "optimized") - mean_of(
        per_users[3], "round_robin"
    )
    print(f"\noptimized - round_robin at 3 users: {gain_3:+.3f} SSIM "
          f"(paper: +0.03)")
    assert gain_3 > 0.005
    # 2 users: difference should be much smaller than at 3 users.
    gain_2 = mean_of(per_users[2], "optimized") - mean_of(
        per_users[2], "round_robin"
    )
    print(f"optimized - round_robin at 2 users: {gain_2:+.3f} SSIM "
          f"(paper: ~0)")
    assert gain_3 >= gain_2 - 0.02
