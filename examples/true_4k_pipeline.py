"""True-4K codec walkthrough: layering, fountain coding, partial decode.

Everything else in the repo runs at a reduced resolution with 4K-equivalent
link load (see DESIGN.md); this example exercises the codec and fountain
coder at the paper's actual 3840x2160 resolution to show that the pipeline
is resolution-agnostic — and to reproduce the paper's layer arithmetic
(~120 KB sublayers, ~20 symbols of ~6000 B each, 11 MB total per frame =
2.6 Gbps at 30 FPS, which is why even MCS 12 cannot carry every layer).

Run:  python examples/true_4k_pipeline.py      (needs ~2 GB RAM, ~1 min)
"""

from __future__ import annotations

import time

import numpy as np

from repro.fountain import FrameBlockDecoder, FrameBlockEncoder
from repro.types import Richness
from repro.video import JigsawCodec, SyntheticVideo, psnr, ssim
from repro.video.synthetic import UHD_HEIGHT, UHD_WIDTH


def main() -> None:
    print("Rendering one true-4K frame (3840x2160 YUV420)...")
    video = SyntheticVideo(
        name="uhd_demo", richness=Richness.HIGH,
        height=UHD_HEIGHT, width=UHD_WIDTH, num_frames=2, seed=3,
    )
    frame = video.frame(0)

    codec = JigsawCodec(UHD_HEIGHT, UHD_WIDTH)
    t0 = time.time()
    layered = codec.encode(frame)
    print(f"layered encode: {time.time() - t0:.2f} s")

    sizes = codec.structure.layer_sizes()
    total = sizes.sum()
    print("\nLayer arithmetic (paper Sec 2.2 / 2.6):")
    for layer, size in enumerate(sizes):
        print(f"  layer {layer}: {size / 1e3:8.0f} KB "
              f"({codec.structure.sublayer_counts[layer]:2d} sublayers)")
    print(f"  total    : {total / 1e6:.1f} MB per frame "
          f"= {total * 8 * 30 / 1e9:.2f} Gbps at 30 FPS")
    print(f"  sublayer : {codec.structure.sublayer_nbytes / 1e3:.0f} KB")

    print("\nFountain-coding one frame (symbol size follows the paper)...")
    encoder = FrameBlockEncoder(0, layered)
    print(f"  symbol size: {encoder.symbol_size} B, "
          f"K = {encoder.symbols_per_unit()} symbols per sublayer")

    print("\nDelivering layers progressively and decoding what arrived:")
    decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
    k = encoder.symbols_per_unit()
    checkpoints = {0: "base layer only", 1: "layers 0-1", 2: "layers 0-2"}
    for upto, label in checkpoints.items():
        for unit in encoder.units:
            if unit.layer == upto:
                for symbol in encoder.next_symbols(unit, k):
                    decoder.ingest(symbol)
        partial, masks = decoder.assemble()
        t0 = time.time()
        reconstructed = codec.decode(partial, masks)
        quality = ssim(frame, reconstructed)
        quality_db = psnr(frame, reconstructed)
        print(f"  {label:16} SSIM {quality:.3f}  PSNR {quality_db:5.1f} dB "
              f"(decode {time.time() - t0:.2f} s)")

    print("\nAt 2.4 Gbps (MCS 12) a 33 ms frame budget carries ~10 MB —"
          "\nlayer 3 can only ever be partially sent, which is exactly the"
          "\nregime the time-allocation optimizer (Sec 2.4) operates in.")


if __name__ == "__main__":
    main()
