"""VR arena: six headsets watching the same live 4K render.

The motivating scenario of the paper's introduction — multiple users gather
in one room (VR gaming / film watching) and the co-located server multicasts
the rendered video.  This example sweeps the four beamforming schemes at two
seating distances and shows why CSI-optimized multicast wins as the room
fills up.

Run:  python examples/vr_arena.py
"""

from __future__ import annotations

import numpy as np

from repro import BeamformingScheme, MulticastStreamer, SystemConfig
from repro.emulation import EmulationScenario
from repro.quality import train_default_dnn
from repro.video import JigsawCodec
from repro.video.dataset import FrameQualityProbe, generate_dataset
from repro.video.synthetic import make_standard_videos

NUM_USERS = 6
FRAMES = 9


def main() -> None:
    height, width = 288, 512
    videos = make_standard_videos(height=height, width=width, num_frames=12)
    print("Training quality model...")
    dataset = generate_dataset(videos, frames_per_video=2, samples_per_frame=16)
    dnn = train_default_dnn(dataset, epochs=200)

    codec = JigsawCodec(height, width)
    probes = [FrameQualityProbe.from_frame(codec, videos[0].frame(i)) for i in range(3)]
    scenario = EmulationScenario(seed=11)

    print(f"\nStreaming to {NUM_USERS} headsets, {FRAMES} frames per setting.\n")
    header = " ".join(f"{s.value[:14]:>16}" for s in BeamformingScheme)
    print(f"{'seating':12} {header}")
    for distance in (4.0, 10.0):
        positions = scenario.place_arc(
            num_users=NUM_USERS, distance_m=distance, mas_deg=90, seed=21
        )
        trace = scenario.static_trace(positions, duration_s=1.0, seed=22)
        row = []
        for scheme in BeamformingScheme:
            config = SystemConfig(height=height, width=width, scheme=scheme)
            streamer = MulticastStreamer(
                config, dnn, probes, scenario.channel_model, seed=23
            )
            outcome = streamer.stream_trace(trace, num_frames=FRAMES)
            row.append(outcome.mean_ssim)
        cells = " ".join(f"{v:>16.3f}" for v in row)
        print(f"{distance:>6.1f} m     {cells}")

    print(
        "\nOptimized multicast forms multi-lobe beams covering several"
        "\nheadsets at once, so one transmission serves many users; unicast"
        "\nschemes split airtime and fall behind as the audience grows."
    )


if __name__ == "__main__":
    main()
