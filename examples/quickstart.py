"""Quickstart: stream live layered video to two WiGig receivers.

Builds the whole pipeline from the public API: synthetic video, quality
model, ray-traced room, multicast beamforming, optimized scheduling, fountain
coding, and paced transmission — then prints per-user quality.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MulticastStreamer, SystemConfig
from repro.emulation import EmulationScenario
from repro.quality import train_default_dnn
from repro.video import JigsawCodec
from repro.video.dataset import FrameQualityProbe, generate_dataset
from repro.video.synthetic import make_standard_videos


def main() -> None:
    height, width = 288, 512

    print("1. Generating the synthetic video corpus (3 HR + 3 LR)...")
    videos = make_standard_videos(height=height, width=width, num_frames=12)

    print("2. Training the DNN video-quality model (Sec 2.3)...")
    dataset = generate_dataset(videos, frames_per_video=2, samples_per_frame=16)
    dnn = train_default_dnn(dataset, epochs=200)
    print(f"   training MSE: {dnn.mse(dataset.features, dataset.ssim):.2e}")

    print("3. Encoding reference frames with the Jigsaw layered codec (Sec 2.2)...")
    codec = JigsawCodec(height, width)
    probes = [FrameQualityProbe.from_frame(codec, videos[0].frame(i)) for i in range(3)]
    sizes = codec.structure.layer_sizes()
    print(f"   layer sizes (bytes): {sizes.astype(int).tolist()}")

    print("4. Placing 2 receivers 3 m from the AP in a ray-traced room...")
    scenario = EmulationScenario(seed=1)
    positions = scenario.place_arc(num_users=2, distance_m=3.0, mas_deg=60, seed=1)
    trace = scenario.static_trace(positions, duration_s=1.0, seed=2)

    print("5. Streaming 15 live frames (30 FPS deadline per frame)...")
    config = SystemConfig(height=height, width=width)
    streamer = MulticastStreamer(config, dnn, probes, scenario.channel_model, seed=3)
    outcome = streamer.stream_trace(trace, num_frames=15)

    print("\n=== Results ===")
    print(f"mean SSIM : {outcome.mean_ssim:.3f}")
    print(f"mean PSNR : {outcome.mean_psnr_db:.1f} dB")
    for user, quality in outcome.per_user_ssim().items():
        print(f"user {user}: SSIM {quality:.3f}")
    met = np.mean([s.deadline_met for s in outcome.stats])
    print(f"frames meeting the 33 ms deadline: {met * 100:.0f}%")


if __name__ == "__main__":
    main()
