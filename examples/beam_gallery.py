"""Beam gallery: what the phased array actually radiates.

Renders azimuth cuts of the four beam families as ASCII art and prints their
pattern statistics — peak gain, -3 dB beamwidth, sidelobe level, lobe count.
The multi-lobe shape of the optimized multicast beam (Sec 4.2.1) is clearly
visible next to the pencil unicast beam and the wide discovery sector.

Run:  python examples/beam_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.beamforming import SectorCodebook
from repro.beamforming.multicast import max_min_multicast_beam
from repro.beamforming.patterns import analyze_pattern, ascii_pattern
from repro.phy.antenna import PhasedArray


def show(title: str, array: PhasedArray, beam: np.ndarray) -> None:
    stats = analyze_pattern(array, beam)
    print(f"\n--- {title} ---")
    for row in ascii_pattern(array, beam, width=72):
        print(row)
    print(
        f"peak {stats.peak_gain_db:5.1f} dB at "
        f"{np.rad2deg(stats.peak_azimuth_rad):+5.1f}°, "
        f"beamwidth {np.rad2deg(stats.beamwidth_rad):4.1f}°, "
        f"sidelobes {stats.sidelobe_level_db:5.1f} dB, "
        f"{stats.num_lobes} lobe(s)"
    )


def main() -> None:
    array = PhasedArray(num_elements=32, phase_bits=2)
    codebook = SectorCodebook(array, num_beams=16, num_wide_beams=4)

    # Pencil unicast beam at +20 degrees.
    unicast = array.conjugate_beam(array.steering_vector(np.deg2rad(20)))
    show("optimized unicast beam (+20°)", array, unicast)

    # Optimized multicast beam covering users at -35° and +25°.
    channels = [
        1e-4 * array.steering_vector(np.deg2rad(-35)),
        1e-4 * array.steering_vector(np.deg2rad(25)),
    ]
    multicast = max_min_multicast_beam(array, channels)
    show("optimized multicast beam (users at -35° and +25°)", array, multicast)

    # A predefined narrow sector and a wide discovery sector.
    show("predefined narrow sector (codebook)", array, codebook.beam(10))
    show("wide discovery sector (codebook)", array, codebook.beam(len(codebook) - 1))

    print(
        "\nThe multicast beam splits its power into lobes toward both users —"
        "\none transmission serves the whole group, which is where the"
        "\nmulticast gain in Figs 5-13 comes from."
    )


if __name__ == "__main__":
    main()
