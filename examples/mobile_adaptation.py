"""Mobile adaptation: walking viewers vs the DASH state of the art.

Reproduces the shape of the paper's Fig 16/17 on one trace: three receivers,
two of them walking, all approaches replaying the *identical* recorded CSI
trace (the paper's trace-driven methodology).  Compares:

* Real-time Update  — the full system, re-optimizing every 100 ms beacon
* No Update         — t=0 schedule frozen (NIC-level beam tracking only)
* Robust MPC        — DASH unicast with conservative throughput prediction
* Fast MPC          — DASH unicast with plain harmonic-mean prediction

Run:  python examples/mobile_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro.emulation import build_context, run_mobile_comparison

DURATION_S = 3.0


def sparkline(values, width: int = 60) -> str:
    """Render an SSIM series as a unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    arr = np.asarray(values)
    if len(arr) > width:
        arr = arr[np.linspace(0, len(arr) - 1, width).astype(int)]
    lo, hi = 0.5, 1.0
    scaled = np.clip((arr - lo) / (hi - lo), 0, 1)
    return "".join(blocks[int(v * (len(blocks) - 1))] for v in scaled)


def main() -> None:
    print("Building shared experiment context (cached after first run)...")
    ctx = build_context()

    for regime, label in (("high", "walking, strong signal"),
                          ("low", "walking, weak signal"),
                          ("env", "people crossing the beams")):
        print(f"\n=== {label} (regime: {regime}) ===")
        series = run_mobile_comparison(
            ctx,
            num_users=3,
            moving_users=[0, 1],
            regime=regime,
            duration_s=DURATION_S,
            seed=5,
        )
        for approach, values in series.items():
            arr = np.asarray(values)
            print(
                f"{approach:17} mean={arr.mean():.3f} "
                f"worst-frame={arr.min():.3f}  {sparkline(values)}"
            )

    print(
        "\nLayered coding + per-beacon re-optimization degrades gracefully"
        "\n(drop a refinement layer) where the GoP-based DASH baselines lose"
        "\nwhole groups of pictures when a chunk misses its live deadline."
    )


if __name__ == "__main__":
    main()
